"""Timing-level invariants of the simulation.

These pin properties that any regression would silently break:

* phantom and real data modes produce *identical* simulated times (the
  benchmark sweeps measure exactly what the verified real-data runs do);
* attaching a tracer never changes timing;
* per-collective times are monotone in message size and node count;
* simulated time is invariant across repeated fresh-world runs.
"""

import numpy as np
import pytest

from repro.bench.microbench import COLLECTIVES, run_point
from repro.core import PiPMColl
from repro.hw import Topology, tiny_test_machine
from repro.mpi import DOUBLE, SUM, Buffer, World
from repro.shmem import PipShmem
from repro.sim import Tracer


def timed_allreduce(phantom: bool, tracer=None) -> float:
    lib = PiPMColl()
    world = World(
        Topology(3, 2), tiny_test_machine(), mechanism=PipShmem(),
        phantom=phantom, tracer=tracer,
    )
    size = world.world_size
    if phantom:
        sends = [Buffer.phantom(256 * 8, DOUBLE) for _ in range(size)]
        recvs = [Buffer.phantom(256 * 8, DOUBLE) for _ in range(size)]
    else:
        rng = np.random.default_rng(0)
        sends = [Buffer.real(rng.random(256)) for _ in range(size)]
        recvs = [Buffer.alloc(DOUBLE, 256) for _ in range(size)]

    def body(ctx):
        yield from lib.allreduce(ctx, sends[ctx.rank], recvs[ctx.rank], SUM)

    return world.run(body).elapsed


class TestDataModeEquivalence:
    def test_phantom_equals_real_timing(self):
        assert timed_allreduce(True) == pytest.approx(
            timed_allreduce(False), rel=1e-12
        )

    @pytest.mark.parametrize(
        "collective", ["scatter", "allgather", "alltoall", "reduce"]
    )
    def test_all_collectives_deterministic_across_runs(self, collective):
        a = run_point("PiP-MColl", collective, 3, 2, 512)
        b = run_point("PiP-MColl", collective, 3, 2, 512)
        assert a.time == b.time
        assert a.internode_messages == b.internode_messages


class TestTracerNeutrality:
    def test_tracing_does_not_change_time(self):
        tracer = Tracer()
        assert timed_allreduce(True, tracer=tracer) == pytest.approx(
            timed_allreduce(True, tracer=None), rel=1e-12
        )
        assert tracer.events  # and it did record


class TestMonotonicity:
    @pytest.mark.parametrize("collective", sorted(COLLECTIVES))
    def test_time_nondecreasing_in_message_size(self, collective):
        sizes = [64, 1024, 16 * 1024, 256 * 1024]
        times = [
            run_point("PiP-MColl", collective, 4, 3, s).time for s in sizes
        ]
        for a, b in zip(times, times[1:]):
            assert b >= a * 0.999, (collective, times)

    @pytest.mark.parametrize("collective", ["scatter", "allgather", "allreduce"])
    def test_time_nondecreasing_in_nodes(self, collective):
        """Within 2%: the allreduce's remainder phase for N just below a
        power of (P+1) can cost a whisker more than the next full round."""
        times = [
            run_point("PiP-MColl", collective, n, 3, 1024).time
            for n in (2, 4, 8, 16)
        ]
        for a, b in zip(times, times[1:]):
            assert b >= a * 0.98, (collective, times)

    def test_more_ppn_helps_scatter_internode_phase(self):
        """More objects per node = more concurrent senders: for a fixed
        total payload per node, the internode phase shortens."""
        # 16 nodes, same total node payload (ppn * per-rank bytes constant)
        t2 = run_point("PiP-MColl", "scatter", 16, 2, 4096).time
        t8 = run_point("PiP-MColl", "scatter", 16, 8, 1024).time
        assert t8 < t2

"""Correctness of the primary PiP-MColl collectives vs numpy ground truth.

Shapes deliberately include powers of (P+1), non-powers, primes, single
nodes, and single-process nodes — the generalised algorithms must be exact
everywhere.
"""

import numpy as np
import pytest

from repro.core import (
    mcoll_allgather_large,
    mcoll_allgather_small,
    mcoll_allreduce_large,
    mcoll_allreduce_small,
    mcoll_scatter,
)
from repro.mpi import DOUBLE, MAX, SUM, Buffer
from repro.shmem import PipShmem

from tests.helpers import alloc_outputs, gathered_matrix, make_world, rank_inputs

# (nodes, ppn): powers of P+1 (4 nodes @ ppn 3 -> B=4; 9 @ 2 -> B=3),
# non-powers, primes, degenerate shapes
SHAPES = [
    (1, 1), (1, 4), (2, 1), (4, 3), (9, 2), (3, 2), (5, 3), (7, 2),
    (6, 1), (8, 4), (13, 3), (16, 2),
]


def shape_id(s):
    return f"{s[0]}x{s[1]}"


def pip_world(shape):
    return make_world(*shape, mechanism=PipShmem())


class TestMcollScatter:
    @pytest.mark.parametrize("shape", SHAPES, ids=shape_id)
    @pytest.mark.parametrize("count", [1, 4])
    def test_each_rank_gets_its_block(self, shape, count):
        world = pip_world(shape)
        size = world.world_size
        full = np.arange(size * count, dtype=np.float64)
        sendbuf = Buffer.real(full.copy())
        recvs = alloc_outputs(world, count)

        def body(ctx):
            sb = sendbuf if ctx.rank == 0 else None
            yield from mcoll_scatter(ctx, sb, recvs[ctx.rank], root=0)

        world.run(body)
        for i, r in enumerate(recvs):
            assert np.array_equal(
                r.array(), full[i * count : (i + 1) * count]
            ), f"rank {i}"

    @pytest.mark.parametrize("shape", [(4, 3), (5, 2), (3, 3)], ids=shape_id)
    @pytest.mark.parametrize("root_kind", ["mid-node", "non-local-root"])
    def test_arbitrary_roots(self, shape, root_kind):
        world = pip_world(shape)
        size = world.world_size
        ppn = shape[1]
        root = ppn if root_kind == "mid-node" else ppn + 1  # node 1
        count = 2
        full = np.arange(size * count, dtype=np.float64)
        sendbuf = Buffer.real(full.copy())
        recvs = alloc_outputs(world, count)

        def body(ctx):
            sb = sendbuf if ctx.rank == root else None
            yield from mcoll_scatter(ctx, sb, recvs[ctx.rank], root=root)

        world.run(body)
        for i, r in enumerate(recvs):
            assert np.array_equal(
                r.array(), full[i * count : (i + 1) * count]
            ), f"rank {i}"


ALLGATHERS = [mcoll_allgather_small, mcoll_allgather_large]


class TestMcollAllgather:
    @pytest.mark.parametrize("shape", SHAPES, ids=shape_id)
    @pytest.mark.parametrize("algo", ALLGATHERS, ids=lambda a: a.__name__)
    def test_everyone_gets_everything(self, shape, algo):
        world = pip_world(shape)
        count = 3
        inputs = rank_inputs(world, count)
        outputs = [
            Buffer.alloc(DOUBLE, world.world_size * count)
            for _ in range(world.world_size)
        ]
        expected = gathered_matrix(inputs)

        def body(ctx):
            yield from algo(ctx, inputs[ctx.rank], outputs[ctx.rank])

        world.run(body)
        for rank, out in enumerate(outputs):
            assert np.array_equal(out.array(), expected), f"rank {rank}"

    @pytest.mark.parametrize("algo", ALLGATHERS, ids=lambda a: a.__name__)
    def test_recvbuf_size_validated(self, algo):
        world = pip_world((2, 2))
        inputs = rank_inputs(world, 4)
        bad = [Buffer.alloc(DOUBLE, 4) for _ in range(4)]

        def body(ctx):
            yield from algo(ctx, inputs[ctx.rank], bad[ctx.rank])

        with pytest.raises(ValueError, match="elements"):
            world.run(body)

    def test_large_sizes_cross_rendezvous_threshold(self):
        """Ring lanes above the eager threshold still deliver correctly."""
        world = pip_world((3, 2))
        count = 20_000  # 160 kB per rank > 64 kB eager threshold
        inputs = rank_inputs(world, count)
        outputs = [
            Buffer.alloc(DOUBLE, world.world_size * count)
            for _ in range(world.world_size)
        ]
        expected = gathered_matrix(inputs)

        def body(ctx):
            yield from mcoll_allgather_large(ctx, inputs[ctx.rank], outputs[ctx.rank])

        world.run(body)
        for out in outputs:
            assert np.array_equal(out.array(), expected)


ALLREDUCES = [mcoll_allreduce_small, mcoll_allreduce_large]


class TestMcollAllreduce:
    @pytest.mark.parametrize("shape", SHAPES, ids=shape_id)
    @pytest.mark.parametrize("algo", ALLREDUCES, ids=lambda a: a.__name__)
    @pytest.mark.parametrize("count", [1, 5, 16])
    def test_everyone_gets_global_sum(self, shape, algo, count):
        world = pip_world(shape)
        inputs = rank_inputs(world, count)
        outputs = alloc_outputs(world, count)
        expected = np.sum([b.array() for b in inputs], axis=0)

        def body(ctx):
            yield from algo(ctx, inputs[ctx.rank], outputs[ctx.rank], SUM)

        world.run(body)
        for rank, out in enumerate(outputs):
            np.testing.assert_allclose(
                out.array(), expected, rtol=1e-12, err_msg=f"rank {rank}"
            )

    @pytest.mark.parametrize("algo", ALLREDUCES, ids=lambda a: a.__name__)
    def test_max_reduction(self, algo):
        world = pip_world((5, 3))
        inputs = rank_inputs(world, 9)
        outputs = alloc_outputs(world, 9)
        expected = np.max([b.array() for b in inputs], axis=0)

        def body(ctx):
            yield from algo(ctx, inputs[ctx.rank], outputs[ctx.rank], MAX)

        world.run(body)
        for out in outputs:
            np.testing.assert_allclose(out.array(), expected, rtol=1e-12)

    def test_large_algo_fewer_elements_than_nodes(self):
        """C < N: some reduce-scatter chunks are empty."""
        world = pip_world((8, 2))
        inputs = rank_inputs(world, 3)
        outputs = alloc_outputs(world, 3)
        expected = np.sum([b.array() for b in inputs], axis=0)

        def body(ctx):
            yield from mcoll_allreduce_large(
                ctx, inputs[ctx.rank], outputs[ctx.rank], SUM
            )

        world.run(body)
        for out in outputs:
            np.testing.assert_allclose(out.array(), expected, rtol=1e-12)

    def test_small_algo_exact_power_shape(self):
        """N = (P+1)^2 exercises two full rounds and no remainder."""
        world = pip_world((9, 2))
        inputs = rank_inputs(world, 4)
        outputs = alloc_outputs(world, 4)
        expected = np.sum([b.array() for b in inputs], axis=0)

        def body(ctx):
            yield from mcoll_allreduce_small(
                ctx, inputs[ctx.rank], outputs[ctx.rank], SUM
            )

        world.run(body)
        for out in outputs:
            np.testing.assert_allclose(out.array(), expected, rtol=1e-12)

    def test_recvbuf_size_validated(self):
        world = pip_world((2, 2))
        inputs = rank_inputs(world, 4)
        bad = [Buffer.alloc(DOUBLE, 3) for _ in range(4)]

        def body(ctx):
            yield from mcoll_allreduce_small(
                ctx, inputs[ctx.rank], bad[ctx.rank], SUM
            )

        with pytest.raises(ValueError, match="elements"):
            world.run(body)

"""Correctness of alltoall: classical baselines and the multi-object
extension, vs the numpy transpose ground truth."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import mcoll_alltoall
from repro.mpi import DOUBLE, Buffer
from repro.mpi.collectives import Group, alltoall_bruck, alltoall_pairwise
from repro.shmem import PipShmem

from tests.helpers import make_world, world_group

SHAPES = [(1, 1), (1, 4), (2, 2), (3, 2), (4, 3), (5, 1), (9, 2)]


def shape_id(s):
    return f"{s[0]}x{s[1]}"


def build_inputs(size, count, seed=0):
    """inputs[r] = rank r's sendbuf; expected[r] = rank r's recvbuf."""
    rng = np.random.default_rng(seed)
    matrix = rng.random((size, size, count))  # [src, dst, elements]
    inputs = [Buffer.real(matrix[r].reshape(-1).copy()) for r in range(size)]
    expected = [
        np.concatenate([matrix[src, dst] for src in range(size)])
        for dst in range(size)
    ]
    return inputs, expected


CLASSICAL = [alltoall_bruck, alltoall_pairwise]


class TestClassicalAlltoall:
    @pytest.mark.parametrize("shape", SHAPES, ids=shape_id)
    @pytest.mark.parametrize("algo", CLASSICAL, ids=lambda a: a.__name__)
    @pytest.mark.parametrize("count", [1, 3])
    def test_transpose_semantics(self, shape, algo, count):
        world = make_world(*shape)
        group = world_group(world)
        size = group.size
        inputs, expected = build_inputs(size, count)
        outputs = [Buffer.alloc(DOUBLE, size * count) for _ in range(size)]

        def body(ctx):
            yield from algo(ctx, group, inputs[ctx.rank], outputs[ctx.rank])

        world.run(body)
        for r, out in enumerate(outputs):
            assert np.array_equal(out.array(), expected[r]), f"rank {r}"

    def test_uneven_sendbuf_rejected(self):
        world = make_world(3, 1)
        group = world_group(world)
        bad = Buffer.alloc(DOUBLE, 7)  # not divisible by 3
        out = Buffer.alloc(DOUBLE, 7)

        def body(ctx):
            yield from alltoall_pairwise(ctx, group, bad, out)

        with pytest.raises(ValueError, match="equal block"):
            world.run(body)

    def test_bruck_cheaper_in_rounds_pairwise_in_volume(self):
        """Bruck: fewer messages; pairwise: fewer total bytes."""
        from repro.hw import Topology, tiny_test_machine
        from repro.mpi import World
        from repro.shmem import PosixShmem

        def run(algo):
            world = World(
                Topology(8, 1), tiny_test_machine(), mechanism=PosixShmem(),
                phantom=True,
            )
            group = Group(range(8))
            sends = [Buffer.phantom(8 * 16) for _ in range(8)]
            recvs = [Buffer.phantom(8 * 16) for _ in range(8)]

            def body(ctx):
                yield from algo(ctx, group, sends[ctx.rank], recvs[ctx.rank])

            world.run(body)
            return (
                world.hw.total_internode_messages(),
                world.hw.total_internode_bytes(),
            )

        bruck_msgs, bruck_bytes = run(alltoall_bruck)
        pw_msgs, pw_bytes = run(alltoall_pairwise)
        assert bruck_msgs < pw_msgs
        assert pw_bytes < bruck_bytes


class TestMcollAlltoall:
    @pytest.mark.parametrize("shape", SHAPES, ids=shape_id)
    @pytest.mark.parametrize("count", [1, 4])
    def test_transpose_semantics(self, shape, count):
        world = make_world(*shape, mechanism=PipShmem())
        size = world.world_size
        inputs, expected = build_inputs(size, count)
        outputs = [Buffer.alloc(DOUBLE, size * count) for _ in range(size)]

        def body(ctx):
            yield from mcoll_alltoall(ctx, inputs[ctx.rank], outputs[ctx.rank])

        world.run(body)
        for r, out in enumerate(outputs):
            assert np.array_equal(out.array(), expected[r]), f"rank {r}"

    def test_volume_is_pairwise_optimal(self):
        """Each internode block crosses the wire exactly once."""
        from repro.hw import Topology, tiny_test_machine
        from repro.mpi import World

        nodes, ppn, C = 4, 3, 16
        world = World(
            Topology(nodes, ppn), tiny_test_machine(), mechanism=PipShmem(),
            phantom=True,
        )
        size = world.world_size
        sends = [Buffer.phantom(size * C) for _ in range(size)]
        recvs = [Buffer.phantom(size * C) for _ in range(size)]

        def body(ctx):
            yield from mcoll_alltoall(ctx, sends[ctx.rank], recvs[ctx.rank])

        world.run(body)
        per_node_expected = (nodes - 1) * ppn * ppn * C
        for nic in world.hw.nics:
            assert nic.bytes_sent == per_node_expected

    def test_beats_flat_pairwise_at_medium_sizes(self):
        """Node-aggregated lanes send P-fold fewer, P-fold bigger messages
        than the flat pairwise exchange — fewer per-message overheads."""
        from repro.baselines import make_library
        from repro.hw import Topology, bebop_broadwell

        def run(libname):
            lib = make_library(libname)
            world = lib.make_world(Topology(8, 6), bebop_broadwell(), phantom=True)
            size = world.world_size
            sends = [Buffer.phantom(size * 512) for _ in range(size)]
            recvs = [Buffer.phantom(size * 512) for _ in range(size)]

            def body(ctx):
                yield from lib.alltoall(ctx, sends[ctx.rank], recvs[ctx.rank])

            world.run(body)
            return world.run(body).elapsed

        assert run("PiP-MColl") < run("PiP-MPICH")

    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        shape=st.tuples(st.integers(1, 6), st.integers(1, 4)),
        count=st.integers(1, 8),
        seed=st.integers(0, 10**6),
    )
    def test_property_random_shapes(self, shape, count, seed):
        world = make_world(*shape, mechanism=PipShmem())
        size = world.world_size
        inputs, expected = build_inputs(size, count, seed)
        outputs = [Buffer.alloc(DOUBLE, size * count) for _ in range(size)]

        def body(ctx):
            yield from mcoll_alltoall(ctx, inputs[ctx.rank], outputs[ctx.rank])

        world.run(body)
        for r, out in enumerate(outputs):
            assert np.array_equal(out.array(), expected[r])

"""Communication-volume and round-count invariants from §III.

The hardware accounting (messages/bytes per NIC) lets us check the paper's
cost analysis *exactly*, independent of timing calibration:

* scatter moves each non-root node's block over the wire exactly the
  tree-depth number of times;
* the small-message allgather ships ``(N-1) * P * C`` bytes out of every
  node; the ring allgather ships the same optimal volume;
* the large-message allreduce cuts internode volume per node to
  ``~2 * C * (N-1)/N`` (reduce-scatter + allgather), versus the small
  algorithm's ``C * P`` per round;
* round counts follow ``ceil(log_{P+1} N)``.
"""

import pytest

from repro.core import (
    mcoll_allgather_large,
    mcoll_allgather_small,
    mcoll_allreduce_large,
    mcoll_allreduce_small,
    mcoll_scatter,
)
from repro.hw import Topology, tiny_test_machine
from repro.mpi import SUM, Buffer, World
from repro.shmem import PipShmem
from repro.util.intmath import ceil_div


def run_collective(algo, nodes, ppn, nbytes, needs_op=False, scatter=False):
    """Run one collective on phantom data; return the World for accounting."""
    world = World(
        Topology(nodes, ppn), tiny_test_machine(), mechanism=PipShmem(),
        phantom=True,
    )
    size = world.world_size
    if scatter:
        sendbuf = Buffer.phantom(nbytes * size)
        recvs = [Buffer.phantom(nbytes) for _ in range(size)]

        def body(ctx):
            sb = sendbuf if ctx.rank == 0 else None
            yield from algo(ctx, sb, recvs[ctx.rank])

    else:
        sends = [Buffer.phantom(nbytes) for _ in range(size)]
        if needs_op:
            recvs = [Buffer.phantom(nbytes) for _ in range(size)]

            def body(ctx):
                yield from algo(ctx, sends[ctx.rank], recvs[ctx.rank], SUM)

        else:
            recvs = [Buffer.phantom(nbytes * size) for _ in range(size)]

            def body(ctx):
                yield from algo(ctx, sends[ctx.rank], recvs[ctx.rank])

    world.run(body)
    return world


class TestScatterVolume:
    @pytest.mark.parametrize("nodes,ppn", [(4, 3), (9, 2), (16, 2), (5, 3)])
    def test_total_bytes_equals_weighted_tree_depth(self, nodes, ppn):
        """Each node block of P*C bytes crosses the wire once per tree
        level it descends through; with near-equal (P+1)-ary splits total
        traffic is between the ideal (N-1)*P*C and that times the depth."""
        C = 64
        world = run_collective(mcoll_scatter, nodes, ppn, C, scatter=True)
        total = world.hw.total_internode_bytes()
        ideal = (nodes - 1) * ppn * C
        depth = max(1, -(-_log_ceil(ppn + 1, nodes)))
        assert ideal <= total <= ideal * depth

    def test_root_nic_carries_the_bulk(self):
        world = run_collective(mcoll_scatter, 9, 2, 64, scatter=True)
        root_sent = world.hw.nics[0].bytes_sent
        total = world.hw.total_internode_bytes()
        assert root_sent >= total / 2


def _log_ceil(base, n):
    import math

    return 0 if n <= 1 else math.ceil(math.log(n) / math.log(base))


class TestAllgatherVolume:
    @pytest.mark.parametrize("nodes,ppn", [(4, 3), (9, 2), (13, 3)])
    def test_small_algorithm_per_node_bytes(self, nodes, ppn):
        """Every node ships exactly (N-1) node blocks over the wire (the
        unified truncated-round formula conserves total volume)."""
        C = 16
        world = run_collective(mcoll_allgather_small, nodes, ppn, C)
        block = ppn * C
        expected_per_node = (nodes - 1) * block
        for nic in world.hw.nics:
            assert nic.bytes_sent == expected_per_node

    @pytest.mark.parametrize("nodes,ppn", [(4, 3), (8, 2)])
    def test_ring_matches_small_volume(self, nodes, ppn):
        """The ring moves the same bandwidth-optimal volume."""
        C = 16
        w_small = run_collective(mcoll_allgather_small, nodes, ppn, C)
        w_large = run_collective(mcoll_allgather_large, nodes, ppn, C)
        assert (
            w_small.hw.total_internode_bytes()
            == w_large.hw.total_internode_bytes()
        )

    def test_small_round_count(self):
        """ceil(log_{P+1} N) rounds of at most P messages per process."""
        nodes, ppn, C = 9, 2, 16
        world = run_collective(mcoll_allgather_small, nodes, ppn, C)
        rounds = _log_ceil(ppn + 1, nodes)
        # per node: at most P sends per round (data messages only — the
        # tiny machine has no extra control messages below 64 kB)
        for nic in world.hw.nics:
            assert nic.messages_sent <= ppn * rounds

    def test_single_node_no_internode_traffic(self):
        world = run_collective(mcoll_allgather_small, 1, 4, 64)
        assert world.hw.total_internode_bytes() == 0


class TestAllreduceVolume:
    def test_large_algorithm_volume_is_bandwidth_optimal(self):
        """§III-B2: per node ~2 * C * (N-1)/N bytes (reduce-scatter +
        allgather), versus C * P * rounds for the small algorithm."""
        nodes, ppn = 8, 4
        C = 8192  # bytes
        w = run_collective(mcoll_allreduce_large, nodes, ppn, C, needs_op=True)
        per_node = [nic.bytes_sent for nic in w.hw.nics]
        expected = 2 * C * (nodes - 1) / nodes
        for sent in per_node:
            assert sent == pytest.approx(expected, rel=0.05)

    def test_small_vs_large_volume_ratio(self):
        """The paper's reduction: from C*P*ceil(log_{P+1}N) down to
        ~2*C*(N-1)/N per node."""
        nodes, ppn, C = 9, 4, 4096
        w_small = run_collective(
            mcoll_allreduce_small, nodes, ppn, C, needs_op=True
        )
        w_large = run_collective(
            mcoll_allreduce_large, nodes, ppn, C, needs_op=True
        )
        small_bytes = w_small.hw.total_internode_bytes()
        large_bytes = w_large.hw.total_internode_bytes()
        assert large_bytes < small_bytes / 2

    def test_small_algorithm_round_messages(self):
        """Power-of-(P+1) node counts: exactly P messages per process per
        round, ceil(log_{P+1} N) rounds, no remainder traffic."""
        nodes, ppn, C = 9, 2, 64  # 9 = (2+1)^2
        w = run_collective(mcoll_allreduce_small, nodes, ppn, C, needs_op=True)
        rounds = 2
        for nic in w.hw.nics:
            assert nic.messages_sent == ppn * rounds
            assert nic.bytes_sent == ppn * rounds * C

"""Property-based tests (hypothesis): the PiP-MColl collectives are exact
for arbitrary cluster shapes, counts, dtypes, and reduction operators."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import (
    mcoll_allgather_large,
    mcoll_allgather_small,
    mcoll_allreduce_large,
    mcoll_allreduce_small,
    mcoll_scatter,
)
from repro.mpi import DOUBLE, MAX, MIN, PROD, SUM, Buffer
from repro.shmem import PipShmem

from tests.helpers import make_world

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

shapes = st.tuples(st.integers(1, 10), st.integers(1, 5))
counts = st.integers(1, 24)
ops = st.sampled_from([SUM, MAX, MIN, PROD])


def pip_world(shape):
    return make_world(*shape, mechanism=PipShmem())


def make_inputs(world, count, seed):
    rng = np.random.default_rng(seed)
    # values in [0.5, 1.5] keep PROD numerically tame
    return [
        Buffer.real(rng.random(count) * 0.5 + 0.75)
        for _ in range(world.world_size)
    ]


@SETTINGS
@given(shape=shapes, count=counts, seed=st.integers(0, 10**6))
def test_scatter_property(shape, count, seed):
    world = pip_world(shape)
    size = world.world_size
    rng = np.random.default_rng(seed)
    full = rng.random(size * count)
    sendbuf = Buffer.real(full.copy())
    recvs = [Buffer.alloc(DOUBLE, count) for _ in range(size)]

    def body(ctx):
        sb = sendbuf if ctx.rank == 0 else None
        yield from mcoll_scatter(ctx, sb, recvs[ctx.rank])

    world.run(body)
    for i, r in enumerate(recvs):
        assert np.array_equal(r.array(), full[i * count:(i + 1) * count])


@SETTINGS
@given(
    shape=shapes,
    count=counts,
    seed=st.integers(0, 10**6),
    algo=st.sampled_from([mcoll_allgather_small, mcoll_allgather_large]),
)
def test_allgather_property(shape, count, seed, algo):
    world = pip_world(shape)
    size = world.world_size
    inputs = make_inputs(world, count, seed)
    outputs = [Buffer.alloc(DOUBLE, size * count) for _ in range(size)]
    expected = np.concatenate([b.array() for b in inputs])

    def body(ctx):
        yield from algo(ctx, inputs[ctx.rank], outputs[ctx.rank])

    world.run(body)
    for out in outputs:
        assert np.array_equal(out.array(), expected)


@SETTINGS
@given(
    shape=shapes,
    count=counts,
    seed=st.integers(0, 10**6),
    op=ops,
    algo=st.sampled_from([mcoll_allreduce_small, mcoll_allreduce_large]),
)
def test_allreduce_property(shape, count, seed, op, algo):
    world = pip_world(shape)
    inputs = make_inputs(world, count, seed)
    outputs = [Buffer.alloc(DOUBLE, count) for _ in range(world.world_size)]
    stacked = np.array([b.array() for b in inputs])
    expected = {
        "sum": stacked.sum(axis=0),
        "prod": stacked.prod(axis=0),
        "max": stacked.max(axis=0),
        "min": stacked.min(axis=0),
    }[op.name]

    def body(ctx):
        yield from algo(ctx, inputs[ctx.rank], outputs[ctx.rank], op)

    world.run(body)
    for out in outputs:
        np.testing.assert_allclose(out.array(), expected, rtol=1e-9)


@SETTINGS
@given(shape=shapes, count=counts, seed=st.integers(0, 10**6))
def test_mcoll_matches_baseline_allreduce(shape, count, seed):
    """PiP-MColl and the MPICH baseline compute identical reductions
    (within floating-point reassociation tolerance)."""
    from repro.baselines import make_library
    from repro.hw import Topology, tiny_test_machine

    rng = np.random.default_rng(seed)
    size = shape[0] * shape[1]
    data = [rng.random(count) for _ in range(size)]

    results = []
    for libname in ("PiP-MColl", "PiP-MPICH"):
        lib = make_library(libname)
        world = lib.make_world(Topology(*shape), tiny_test_machine())
        sends = [Buffer.real(d.copy()) for d in data]
        recvs = [Buffer.alloc(DOUBLE, count) for _ in range(size)]

        def body(ctx):
            yield from lib.allreduce(ctx, sends[ctx.rank], recvs[ctx.rank], SUM)

        world.run(body)
        results.append(recvs[0].array().copy())

    np.testing.assert_allclose(results[0], results[1], rtol=1e-9)


@SETTINGS
@given(shape=shapes, seed=st.integers(0, 10**6))
def test_timing_is_positive_and_deterministic(shape, seed):
    """Simulated time is strictly positive and identical across reruns of
    the same program (full determinism)."""
    del seed  # shape is the interesting axis; keep signature for shrinking

    def once():
        from repro.hw import Topology, tiny_test_machine
        from repro.mpi import World

        world = World(
            Topology(*shape), tiny_test_machine(), mechanism=PipShmem(),
            phantom=True,
        )
        size = world.world_size
        sends = [Buffer.phantom(64) for _ in range(size)]
        recvs = [Buffer.phantom(64 * size) for _ in range(size)]

        def body(ctx):
            yield from mcoll_allgather_small(ctx, sends[ctx.rank], recvs[ctx.rank])

        return world.run(body).elapsed

    t1, t2 = once(), once()
    assert t1 > 0
    assert t1 == t2

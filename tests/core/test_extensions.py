"""Tests for the extension collectives (multi-object bcast and barrier)
and for the overlap ablation knobs."""

import numpy as np
import pytest

from repro.core import (
    PiPMColl,
    mcoll_allgather_large,
    mcoll_barrier,
    mcoll_bcast,
    mcoll_scatter,
)
from repro.mpi import DOUBLE, Buffer
from repro.shmem import PipShmem

from tests.helpers import make_world

SHAPES = [(1, 1), (1, 4), (2, 1), (4, 3), (9, 2), (5, 3), (13, 3), (16, 2)]


def shape_id(s):
    return f"{s[0]}x{s[1]}"


def pip_world(shape):
    return make_world(*shape, mechanism=PipShmem())


class TestMcollBcast:
    @pytest.mark.parametrize("shape", SHAPES, ids=shape_id)
    def test_everyone_gets_root_data(self, shape):
        world = pip_world(shape)
        payload = np.arange(13, dtype=np.float64)
        bufs = [
            Buffer.real(payload.copy()) if r == 0 else Buffer.alloc(DOUBLE, 13)
            for r in range(world.world_size)
        ]

        def body(ctx):
            yield from mcoll_bcast(ctx, bufs[ctx.rank], root=0)

        world.run(body)
        for b in bufs:
            assert np.array_equal(b.array(), payload)

    @pytest.mark.parametrize("root", [1, 5, 7])
    def test_arbitrary_roots(self, root):
        world = pip_world((4, 2))
        payload = np.arange(6, dtype=np.float64) * 3
        bufs = [
            Buffer.real(payload.copy()) if r == root else Buffer.alloc(DOUBLE, 6)
            for r in range(world.world_size)
        ]

        def body(ctx):
            yield from mcoll_bcast(ctx, bufs[ctx.rank], root=root)

        world.run(body)
        for b in bufs:
            assert np.array_equal(b.array(), payload)

    def test_beats_binomial_at_scale(self):
        """The (P+1)-ary multi-object tree needs fewer internode rounds
        than the flat binomial broadcast for small payloads."""
        from repro.hw import Topology, bebop_broadwell
        from repro.mpi import World
        from repro.mpi.collectives import Group, bcast_binomial

        def run(use_mcoll):
            world = World(
                Topology(16, 6), bebop_broadwell(), mechanism=PipShmem(),
                phantom=True,
            )
            bufs = [Buffer.phantom(64) for _ in range(world.world_size)]
            group = Group(range(world.world_size))

            def body(ctx):
                if use_mcoll:
                    yield from mcoll_bcast(ctx, bufs[ctx.rank], root=0)
                else:
                    yield from bcast_binomial(ctx, group, bufs[ctx.rank], 0)

            world.run(body)
            return world.run(body).elapsed

        assert run(True) < run(False)


class TestMcollBarrier:
    @pytest.mark.parametrize("shape", SHAPES, ids=shape_id)
    def test_no_rank_exits_before_last_enters(self, shape):
        world = pip_world(shape)
        enter, exit_ = {}, {}

        def body(ctx):
            yield from ctx.compute(((ctx.rank * 13) % 7) * 1e-5)
            enter[ctx.rank] = world.engine.now
            yield from mcoll_barrier(ctx)
            exit_[ctx.rank] = world.engine.now

        world.run(body)
        assert min(exit_.values()) >= max(enter.values())

    def test_repeated_barriers_do_not_interfere(self):
        world = pip_world((3, 2))
        history = []

        def body(ctx):
            for i in range(3):
                yield from ctx.compute(ctx.rank * 1e-6 * (i + 1))
                yield from mcoll_barrier(ctx)
                if ctx.rank == 0:
                    history.append(world.engine.now)

        world.run(body)
        assert history == sorted(history)
        assert len(history) == 3


class TestFacadeExtensions:
    def test_library_exposes_bcast_and_barrier(self):
        from repro.hw import Topology, tiny_test_machine

        lib = PiPMColl()
        world = lib.make_world(Topology(2, 2), tiny_test_machine())
        payload = np.array([1.0, 2.0, 3.0])
        bufs = [
            Buffer.real(payload.copy()) if r == 0 else Buffer.alloc(DOUBLE, 3)
            for r in range(4)
        ]

        def body(ctx):
            yield from lib.bcast(ctx, bufs[ctx.rank], root=0)
            yield from lib.barrier(ctx)

        world.run(body)
        for b in bufs:
            assert np.array_equal(b.array(), payload)


class TestOverlapKnobs:
    def test_scatter_overlap_off_still_correct(self):
        world = pip_world((4, 3))
        size = world.world_size
        full = np.arange(size * 2, dtype=np.float64)
        sendbuf = Buffer.real(full.copy())
        recvs = [Buffer.alloc(DOUBLE, 2) for _ in range(size)]

        def body(ctx):
            sb = sendbuf if ctx.rank == 0 else None
            yield from mcoll_scatter(ctx, sb, recvs[ctx.rank], overlap=False)

        world.run(body)
        for i, r in enumerate(recvs):
            assert np.array_equal(r.array(), full[i * 2:(i + 1) * 2])

    def test_allgather_overlap_off_still_correct(self):
        world = pip_world((3, 2))
        size = world.world_size
        rng = np.random.default_rng(5)
        inputs = [Buffer.real(rng.random(4)) for _ in range(size)]
        outputs = [Buffer.alloc(DOUBLE, size * 4) for _ in range(size)]
        expected = np.concatenate([b.array() for b in inputs])

        def body(ctx):
            yield from mcoll_allgather_large(
                ctx, inputs[ctx.rank], outputs[ctx.rank], overlap=False
            )

        world.run(body)
        for out in outputs:
            assert np.array_equal(out.array(), expected)

    def test_overlap_helps_large_allgather(self):
        from repro.hw import Topology, bebop_broadwell
        from repro.mpi import World

        def run(overlap):
            world = World(
                Topology(6, 4), bebop_broadwell(), mechanism=PipShmem(),
                phantom=True,
            )
            size = world.world_size
            sends = [Buffer.phantom(128 * 1024) for _ in range(size)]
            recvs = [Buffer.phantom(128 * 1024 * size) for _ in range(size)]

            def body(ctx):
                yield from mcoll_allgather_large(
                    ctx, sends[ctx.rank], recvs[ctx.rank], overlap=overlap
                )

            world.run(body)
            return world.run(body).elapsed

        assert run(True) < run(False)

"""Correctness of the multi-object gather/reduce extensions and the
classical reduce-scatter algorithms."""

import numpy as np
import pytest

from repro.core import mcoll_gather, mcoll_reduce
from repro.mpi import DOUBLE, MAX, SUM, Buffer
from repro.mpi.collectives import (
    reduce_scatter_halving,
    reduce_scatter_pairwise,
)
from repro.shmem import PipShmem

from tests.helpers import make_world, rank_inputs, world_group

SHAPES = [(1, 1), (1, 4), (2, 1), (4, 3), (9, 2), (5, 3), (16, 2)]


def shape_id(s):
    return f"{s[0]}x{s[1]}"


class TestMcollGather:
    @pytest.mark.parametrize("shape", SHAPES, ids=shape_id)
    def test_root_collects_in_rank_order(self, shape):
        world = make_world(*shape, mechanism=PipShmem())
        size = world.world_size
        count = 3
        inputs = rank_inputs(world, count)
        recvbuf = Buffer.alloc(DOUBLE, size * count)

        def body(ctx):
            rb = recvbuf if ctx.rank == 0 else None
            yield from mcoll_gather(ctx, inputs[ctx.rank], rb, root=0)

        world.run(body)
        expected = np.concatenate([b.array() for b in inputs])
        assert np.array_equal(recvbuf.array(), expected)

    @pytest.mark.parametrize("root", [1, 5, 7])
    def test_arbitrary_roots(self, root):
        world = make_world(4, 2, mechanism=PipShmem())
        size = world.world_size
        inputs = rank_inputs(world, 2)
        recvbuf = Buffer.alloc(DOUBLE, size * 2)

        def body(ctx):
            rb = recvbuf if ctx.rank == root else None
            yield from mcoll_gather(ctx, inputs[ctx.rank], rb, root=root)

        world.run(body)
        expected = np.concatenate([b.array() for b in inputs])
        assert np.array_equal(recvbuf.array(), expected)

    def test_recvbuf_size_validated(self):
        world = make_world(2, 2, mechanism=PipShmem())
        inputs = rank_inputs(world, 4)
        bad = Buffer.alloc(DOUBLE, 4)

        def body(ctx):
            rb = bad if ctx.rank == 0 else None
            yield from mcoll_gather(ctx, inputs[ctx.rank], rb)

        with pytest.raises(ValueError, match="elements"):
            world.run(body)

    def test_incast_spread_over_root_lanes(self):
        """The root node's P processes each receive from remote nodes."""
        from repro.hw import Topology, tiny_test_machine
        from repro.mpi import World

        world = World(
            Topology(4, 3), tiny_test_machine(), mechanism=PipShmem(),
            phantom=True,
        )
        size = world.world_size
        sends = [Buffer.phantom(64) for _ in range(size)]
        recvbuf = Buffer.phantom(64 * size)

        def body(ctx):
            rb = recvbuf if ctx.rank == 0 else None
            yield from mcoll_gather(ctx, sends[ctx.rank], rb)

        world.run(body)
        # each non-root node sends P messages (one per lane)
        for nic in world.hw.nics[1:]:
            assert nic.messages_sent == 3


class TestMcollReduce:
    @pytest.mark.parametrize("shape", SHAPES, ids=shape_id)
    @pytest.mark.parametrize("op,npop", [(SUM, np.sum), (MAX, np.max)])
    def test_root_gets_reduction(self, shape, op, npop):
        world = make_world(*shape, mechanism=PipShmem())
        count = 7
        inputs = rank_inputs(world, count)
        recvbuf = Buffer.alloc(DOUBLE, count)

        def body(ctx):
            rb = recvbuf if ctx.rank == 0 else None
            yield from mcoll_reduce(ctx, inputs[ctx.rank], rb, op, root=0)

        world.run(body)
        expected = npop([b.array() for b in inputs], axis=0)
        np.testing.assert_allclose(recvbuf.array(), expected, rtol=1e-12)

    @pytest.mark.parametrize("root", [2, 5])
    def test_arbitrary_roots(self, root):
        world = make_world(3, 2, mechanism=PipShmem())
        inputs = rank_inputs(world, 5)
        recvbuf = Buffer.alloc(DOUBLE, 5)

        def body(ctx):
            rb = recvbuf if ctx.rank == root else None
            yield from mcoll_reduce(ctx, inputs[ctx.rank], rb, SUM, root=root)

        world.run(body)
        expected = np.sum([b.array() for b in inputs], axis=0)
        np.testing.assert_allclose(recvbuf.array(), expected, rtol=1e-12)

    def test_fewer_elements_than_nodes(self):
        world = make_world(8, 2, mechanism=PipShmem())
        inputs = rank_inputs(world, 3)
        recvbuf = Buffer.alloc(DOUBLE, 3)

        def body(ctx):
            rb = recvbuf if ctx.rank == 0 else None
            yield from mcoll_reduce(ctx, inputs[ctx.rank], rb, SUM)

        world.run(body)
        expected = np.sum([b.array() for b in inputs], axis=0)
        np.testing.assert_allclose(recvbuf.array(), expected, rtol=1e-12)

    def test_bandwidth_beats_binomial_for_large(self):
        """Reduce-scatter + collect moves ~2C/node vs binomial's C*log."""
        from repro.baselines import make_library
        from repro.hw import Topology, bebop_broadwell

        count = 1 << 16  # 512 kB

        def run(libname):
            lib = make_library(libname)
            world = lib.make_world(Topology(8, 4), bebop_broadwell(), phantom=True)
            size = world.world_size
            sends = [Buffer.phantom(count * 8, DOUBLE) for _ in range(size)]
            recvbuf = Buffer.phantom(count * 8, DOUBLE)

            def body(ctx):
                rb = recvbuf if ctx.rank == 0 else None
                yield from lib.reduce(ctx, sends[ctx.rank], rb, SUM)

            world.run(body)
            return world.run(body).elapsed

        assert run("PiP-MColl") < run("PiP-MPICH")


RS_ALGOS = [reduce_scatter_halving, reduce_scatter_pairwise]


class TestReduceScatter:
    @pytest.mark.parametrize(
        "shape", [(1, 1), (2, 2), (4, 2), (2, 4)], ids=shape_id
    )
    @pytest.mark.parametrize("algo", RS_ALGOS, ids=lambda a: a.__name__)
    def test_each_rank_gets_its_reduced_block(self, shape, algo):
        world = make_world(*shape)
        group = world_group(world)
        size = group.size
        count = 3
        rng = np.random.default_rng(8)
        full = [rng.random(size * count) for _ in range(size)]
        inputs = [Buffer.real(f.copy()) for f in full]
        outputs = [Buffer.alloc(DOUBLE, count) for _ in range(size)]
        total = np.sum(full, axis=0)

        def body(ctx):
            yield from algo(ctx, group, inputs[ctx.rank], outputs[ctx.rank], SUM)

        world.run(body)
        for i, out in enumerate(outputs):
            np.testing.assert_allclose(
                out.array(), total[i * count:(i + 1) * count], rtol=1e-12
            )

    def test_pairwise_handles_non_pow2(self):
        world = make_world(3, 2)
        group = world_group(world)
        size = group.size
        rng = np.random.default_rng(3)
        full = [rng.random(size * 2) for _ in range(size)]
        inputs = [Buffer.real(f.copy()) for f in full]
        outputs = [Buffer.alloc(DOUBLE, 2) for _ in range(size)]
        total = np.sum(full, axis=0)

        def body(ctx):
            yield from reduce_scatter_pairwise(
                ctx, group, inputs[ctx.rank], outputs[ctx.rank], SUM
            )

        world.run(body)
        for i, out in enumerate(outputs):
            np.testing.assert_allclose(out.array(), total[i * 2:(i + 1) * 2])

    def test_halving_rejects_non_pow2(self):
        world = make_world(3, 1)
        group = world_group(world)
        inputs = [Buffer.alloc(DOUBLE, 3) for _ in range(3)]
        outputs = [Buffer.alloc(DOUBLE, 1) for _ in range(3)]

        def body(ctx):
            yield from reduce_scatter_halving(
                ctx, group, inputs[ctx.rank], outputs[ctx.rank], SUM
            )

        with pytest.raises(ValueError, match="power-of-two"):
            world.run(body)

    @pytest.mark.parametrize("algo", RS_ALGOS, ids=lambda a: a.__name__)
    def test_sendbuf_size_validated(self, algo):
        world = make_world(2, 1)
        group = world_group(world)
        bad = Buffer.alloc(DOUBLE, 3)
        out = Buffer.alloc(DOUBLE, 2)

        def body(ctx):
            yield from algo(ctx, group, bad, out, SUM)

        with pytest.raises(ValueError, match="elements"):
            world.run(body)

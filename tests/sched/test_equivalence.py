"""Golden-trace equivalence: compiled schedules vs. the original generators.

``tests/data/golden_sched.json`` was recorded from the hand-written
generator implementations immediately before the schedule-IR migration.
Each point pins the exact per-iteration simulated times, their mean, and
the internode message count; the :class:`~repro.sched.executor
.ScheduleExecutor` replay must reproduce all three **bit-for-bit** —
pure-Python planning work costs zero simulated time, so any drift at all
means the executor changed the yield sequence, not just some constant.
"""

import json
from pathlib import Path

import pytest

from repro.bench.microbench import run_point

_GOLDEN = json.loads(
    (Path(__file__).parent.parent / "data" / "golden_sched.json").read_text()
)


def _label(point):
    return (
        f"{point['library']}-{point['collective']}-"
        f"{point['nodes']}x{point['ppn']}-{point['msg_bytes']}B"
    )


@pytest.mark.parametrize("point", _GOLDEN, ids=_label)
def test_schedule_replay_is_bit_identical_to_generator(point):
    result = run_point(
        point["library"],
        point["collective"],
        point["nodes"],
        point["ppn"],
        point["msg_bytes"],
    )
    # exact float equality on purpose: no tolerance, no approx
    assert list(result.samples) == point["samples"]
    assert result.time == point["time"]
    assert result.internode_messages == point["internode_messages"]


def test_golden_file_covers_every_planned_library():
    libraries = {p["library"] for p in _GOLDEN}
    assert {
        "PiP-MColl", "PiP-MColl-small", "PiP-MPICH", "OpenMPI"
    } <= libraries
    collectives = {p["collective"] for p in _GOLDEN}
    assert {"scatter", "allgather", "allreduce"} <= collectives

"""The native batch engine's contract: bit-identical to engine="batch".

``engine="native-batch"`` lowers the batch engine's structural-signature
groups to flat array programs and replays the whole vector-clock pass in
the (conditionally numba-JIT) kernel of
:mod:`repro.sim.native_batchline`.  Its acceptance contract is the batch
engine's, inherited transitively from the DAG engine: *bit-identical*
samples and message counts for every (point, size) — across the registry
grid, threshold-straddling axes, and forced-divergence passes where the
conflict adjudicator flags every size.  The interp twin of the kernel is
what runs on numba-free installs (including this suite), so the exact
kernel logic is pinned here; the CI ``native-engine`` job reruns the same
suite with numba installed, where ``get_kernels`` JIT-compiles the
identical source.
"""

import builtins
import random

import numpy as np
import pytest

from repro.bench.microbench import run_point
from repro.sched import batch as batch_mod
from repro.sched import native_batch
from repro.sched.batch import clear_lowering_cache
from repro.sched.registry import registry_combinations
from repro.sim import native_batchline as nbl
from repro.sim.batchline import BatchTimeline

#: canonical registry name -> the benchmark-facing display name
BENCH_NAME = {
    "pip-mcoll": "PiP-MColl",
    "pip-mcoll-small": "PiP-MColl-small",
    "pip-mpich": "PiP-MPICH",
    "openmpi": "OpenMPI",
}

#: straddles the 16 KB eager/rendezvous default, the hybrid intranode
#: thresholds, and the PiP-MColl 64 KB algorithm switches
STRADDLE_AXIS = (16, 512, 4096, 16384, 32768, 65536, 131072, 262144)

SHAPES = ((2, 2), (4, 3))


def _assert_column_identical(lib, coll, nodes, ppn, sizes, **kw):
    """native-batch vs batch, cold caches on both sides."""
    clear_lowering_cache()
    ref = batch_mod.evaluate_column(BENCH_NAME[lib], coll, nodes, ppn,
                                    sizes, **kw)
    clear_lowering_cache()
    col = native_batch.evaluate_column(BENCH_NAME[lib], coll, nodes, ppn,
                                       sizes, **kw)
    assert set(col.results) == set(sizes)
    for s in sizes:
        label = f"{lib}/{coll} {nodes}x{ppn} {s}B"
        assert col.results[s].samples == ref.results[s].samples, label
        assert col.results[s].internode_messages == \
            ref.results[s].internode_messages, label
    # the engines must agree on the adjudication verdicts too, not just
    # the numbers: same partitions, same divergence fallbacks
    assert col.stats.partitions == ref.stats.partitions
    assert col.stats.fallback_sizes == ref.stats.fallback_sizes
    assert col.stats.singleton_sizes == ref.stats.singleton_sizes
    assert col.stats.splits == ref.stats.splits
    assert col.stats.retries == ref.stats.retries
    assert col.stats.kernel_mode in ("jit", "interp")
    clear_lowering_cache()
    return col


# -- the acceptance grid: every registry pair, threshold-straddling axes --


@pytest.mark.parametrize("lib,coll", registry_combinations())
def test_column_identical_on_registry_grid(lib, coll):
    for nodes, ppn in SHAPES:
        _assert_column_identical(lib, coll, nodes, ppn, STRADDLE_AXIS)


def test_column_identical_on_randomized_shapes():
    """Fixed-seed fuzz over shapes, axes and iteration protocols."""
    rng = random.Random(7)
    combos = registry_combinations()
    for _ in range(6):
        lib, coll = rng.choice(combos)
        nodes = rng.randint(2, 4)
        ppn = rng.randint(1, 4)
        sizes = tuple(sorted(rng.sample(
            (16, 256, 1024, 4096, 16384, 65536, 262144), 4)))
        warmup = rng.randint(0, 2)
        _assert_column_identical(lib, coll, nodes, ppn, sizes,
                                 warmup=warmup, measure=2)


def test_native_batch_honours_threshold_overrides():
    from repro.core.tuning import Thresholds

    _assert_column_identical(
        "pip-mcoll", "allreduce", 2, 2, (512, 32768, 131072),
        thresholds=Thresholds.always_large(),
    )


# -- forced divergence: the adjudicator must run the pure engine's code --


def test_forced_order_divergence_falls_back_to_dag(monkeypatch):
    """With every size flagged divergent, the native engine must take the
    same DAG bail-out as the pure engine — the reconstruction-based
    adjudication replays the kernel's touch logs through a *real*
    ``BatchTimeline``, so a monkeypatched ``order_divergence`` governs
    both engines identically."""

    def all_divergent(self):
        return np.ones(self.width, dtype=bool)

    monkeypatch.setattr(BatchTimeline, "order_divergence", all_divergent)
    col = _assert_column_identical(
        "pip-mcoll", "allgather", 2, 2, (512, 1024, 2048, 4096),
    )
    assert set(col.stats.fallback_sizes) | set(col.stats.singleton_sizes) \
        == {512, 1024, 2048, 4096}


# -- run_point / sweep-runner wiring ---------------------------------------


def test_run_point_engine_native_batch_identical_to_batch():
    nat = run_point("PiP-MColl", "allreduce", 2, 2, 4096,
                    engine="native-batch")
    ref = run_point("PiP-MColl", "allreduce", 2, 2, 4096, engine="batch")
    assert nat == ref


def test_native_batch_rejects_tracing():
    from repro.sim.trace import Tracer

    with pytest.raises(ValueError, match="trace"):
        run_point("PiP-MColl", "allreduce", 2, 2, 512,
                  engine="native-batch", tracer=Tracer())


def test_sweep_column_routes_prefer_native_batch(monkeypatch):
    """Column work units upgrade to the native kernel exactly when it is
    available; explicit ``engine="batch"`` stays pure."""
    from repro.bench.runner.points import Point
    from repro.bench.runner.pool import (
        plan_column_routes,
        run_sweep_column_stats,
    )

    pts = [
        Point("PiP-MColl", "allgather", 2, 2, s, engine="native-batch")
        for s in (512, 2048, 8192)
    ]
    assert sum(len(v) for v in plan_column_routes(pts).values()) == 3

    clear_lowering_cache()
    monkeypatch.setattr(native_batch, "native_batch_available",
                        lambda: True)
    results, delta = run_sweep_column_stats(pts)
    assert delta["kernel_mode"] in ("jit", "interp")
    assert delta["native_bailouts"] == 0

    clear_lowering_cache()
    batch_pts = [
        Point("PiP-MColl", "allgather", 2, 2, s, engine="batch")
        for s in (512, 2048, 8192)
    ]
    ref, ref_delta = run_sweep_column_stats(batch_pts)
    assert ref_delta["kernel_mode"] == ""
    assert [
        (r.samples, r.internode_messages) for r in results
    ] == [(r.samples, r.internode_messages) for r in ref]
    clear_lowering_cache()


def test_native_bailout_falls_back_to_pure_batch(monkeypatch):
    """A kernel bail-out mid-column reruns that pass on the pure engine —
    results identical, and the bailout surfaces in the stats."""
    from repro.sched.native import NativeBailout

    def bail(*args, **kwargs):
        raise NativeBailout("synthetic bail")

    monkeypatch.setattr(native_batch, "_evaluate_partition_native", bail)
    clear_lowering_cache()
    col = native_batch.evaluate_column(
        "PiP-MColl", "scatter", 2, 2, (512, 2048, 8192))
    clear_lowering_cache()
    ref = batch_mod.evaluate_column(
        "PiP-MColl", "scatter", 2, 2, (512, 2048, 8192))
    assert col.results == ref.results
    assert col.stats.native_bailouts >= 1
    clear_lowering_cache()


# -- the kill switch: one env var silences every JIT tier ------------------


def _block_numba(monkeypatch):
    monkeypatch.delenv("PIPMCOLL_NO_NATIVE", raising=False)
    real_import = builtins.__import__

    def blocked(name, *args, **kwargs):
        if name == "numba" or name.startswith("numba."):
            raise ImportError("numba blocked for this test")
        return real_import(name, *args, **kwargs)

    monkeypatch.setattr(builtins, "__import__", blocked)


def test_escape_hatch_disables_native_batch(monkeypatch):
    monkeypatch.setenv("PIPMCOLL_NO_NATIVE", "1")
    assert not native_batch.native_batch_available()
    assert not nbl.jit_available()
    assert nbl.kernel_mode() == "interp"


def test_escape_hatch_runs_pure_python_batchline(monkeypatch):
    """With the kill switch set, column work units must run the
    pure-Python batchline — the kernel module is never consulted."""
    from repro.bench.runner.points import Point
    from repro.bench.runner.pool import run_sweep_column

    monkeypatch.setenv("PIPMCOLL_NO_NATIVE", "1")

    def boom(*args, **kwargs):
        raise AssertionError(
            "native batch evaluator called despite PIPMCOLL_NO_NATIVE=1")

    monkeypatch.setattr(native_batch, "evaluate_column", boom)
    pts = [
        Point("PiP-MColl", "allgather", 2, 2, s, engine="native-batch")
        for s in (512, 2048)
    ]
    clear_lowering_cache()
    results = run_sweep_column(pts)
    clear_lowering_cache()
    ref = batch_mod.evaluate_column(
        "PiP-MColl", "allgather", 2, 2, (512, 2048))
    assert [(r.samples, r.internode_messages) for r in results] == [
        (ref.results[s].samples, ref.results[s].internode_messages)
        for s in (512, 2048)
    ]
    clear_lowering_cache()


def test_run_point_falls_back_to_batch_without_numba(monkeypatch):
    _block_numba(monkeypatch)
    assert not native_batch.native_batch_available()

    def boom(*args, **kwargs):
        raise AssertionError(
            "native batch evaluator called despite numba absent")

    monkeypatch.setattr(native_batch, "evaluate_column", boom)
    result = run_point("PiP-MColl", "scatter", 2, 2, 512,
                       engine="native-batch")
    reference = run_point("PiP-MColl", "scatter", 2, 2, 512,
                          engine="batch")
    assert result == reference


# -- warmup cache: the kernel builds once, never rebuilds ------------------


def test_kernel_cache_returns_same_object():
    first = nbl.get_kernels(force_interp=True)
    assert nbl.get_kernels(force_interp=True) is first
    assert first["mode"] == "interp"


def test_repeat_evaluations_do_not_rebuild_kernels():
    native_batch.evaluate_column("pip-mcoll", "scatter", 2, 2, (64, 256),
                                 force_interp=True)
    before = nbl.build_count
    for _ in range(3):
        native_batch.evaluate_column(
            "pip-mcoll", "scatter", 2, 2, (64, 256), force_interp=True)
        native_batch.evaluate_column(
            "pip-mcoll", "allreduce", 2, 3, (2048, 8192),
            force_interp=True)
    assert nbl.build_count == before


def test_warm_kernels_is_idempotent_and_no_recompile():
    mode = native_batch.warm_kernels()
    assert mode in ("jit", "interp")
    kernels = nbl.get_kernels()
    before = nbl.build_count
    if mode == "jit":  # pragma: no cover - needs numba installed
        sigs = len(kernels["replay"].signatures)
    assert native_batch.warm_kernels() == mode
    assert nbl.build_count == before
    assert nbl.get_kernels() is kernels
    if mode == "jit":  # pragma: no cover - needs numba installed
        # warm again on the same grid point: no new specialization
        native_batch.evaluate_column("pip-mcoll", "scatter", 2, 2,
                                     (64, 256))
        assert len(kernels["replay"].signatures) == sigs

"""The analytic tier: closed-form estimates with an error-bounded contract.

Unlike the DAG/batch engines there is no bit-identity to assert; the
contract is (a) coverage of the registry surface, (b) measured relative
error vs the exact engines below the documented
:data:`repro.sched.analytic.ERROR_BOUND`, (c) vectorized axis evaluation
identical to per-point evaluation, and (d) logical message counts equal to
the static schedule count times the iteration count.
"""

import pickle

import pytest

from repro.bench.microbench import ENGINES, run_point
from repro.core.tuning import Thresholds
from repro.models.calibrate import measure_errors
from repro.sched.analytic import (
    ERROR_BOUND,
    analytic_supported,
    evaluate_axis,
    evaluate_point,
)
from repro.sched.check import check_planned
from repro.sched.registry import plan_for, registry_combinations

SHAPES = ((2, 4), (3, 8))
SIZES = (512, 16384, 262144)


# -- coverage -------------------------------------------------------------


def test_supported_is_the_registry_surface():
    for lib, coll in registry_combinations():
        assert analytic_supported(lib, coll)
    assert not analytic_supported("openmpi", "scatter")
    assert not analytic_supported("pip-mcoll", "bcast")
    assert not analytic_supported("mvapich2", "allgather")


def test_unsupported_pair_raises():
    with pytest.raises(ValueError, match="closed-form"):
        evaluate_point("OpenMPI", "scatter", 2, 2, 512)


# -- accuracy contract ----------------------------------------------------


def test_error_bound_on_quick_grid():
    """Measured max relative error vs the DAG engine stays below the
    documented bound (the full-grid figure is persisted by
    ``python -m repro.models.calibrate`` to results/analytic_error.json)."""
    doc = measure_errors(quick=True)
    assert doc["bound"] == ERROR_BOUND
    assert doc["overall"]["max_rel_err"] < ERROR_BOUND, doc["overall"]
    assert doc["within_bound"]


def test_estimates_are_positive_and_monotone_at_scale():
    """Per-iteration estimates are positive and grow with the message
    size once past the latency floor (sanity of the closed forms)."""
    for lib, coll in registry_combinations():
        col = evaluate_axis(lib, coll, 2, 4, (16384, 65536, 262144))
        times = [col.results[s].time for s in (16384, 65536, 262144)]
        assert all(t > 0 for t in times), (lib, coll)
        assert times[0] < times[1] < times[2], (lib, coll, times)


# -- vectorization --------------------------------------------------------


def test_axis_matches_per_point():
    axis = (16, 512, 4096, 65536, 131072, 524288)
    for lib, coll in (("pip-mcoll", "allreduce"), ("openmpi", "allgather")):
        col = evaluate_axis(lib, coll, 2, 8, axis)
        for s in axis:
            assert col.results[s] == evaluate_point(lib, coll, 2, 8, s)


def test_thresholds_override_switches_algorithm():
    always_small = evaluate_point(
        "pip-mcoll", "allreduce", 2, 4, 262144,
        thresholds=Thresholds.always_small(),
    )
    default = evaluate_point("pip-mcoll", "allreduce", 2, 4, 262144)
    assert always_small.time != default.time


# -- message counts -------------------------------------------------------


@pytest.mark.parametrize("lib,coll", registry_combinations())
def test_message_counts_are_static_times_iterations(lib, coll):
    for nodes, ppn in SHAPES:
        for nbytes in SIZES:
            est = evaluate_point(
                lib, coll, nodes, ppn, nbytes, warmup=2, measure=3
            )
            static = check_planned(
                plan_for(lib, coll, nodes, ppn, nbytes), ppn
            ).internode_messages
            assert est.internode_messages == static * 5, (
                lib, coll, nodes, ppn, nbytes
            )


# -- engine wiring --------------------------------------------------------


def test_engine_registered():
    assert "analytic" in ENGINES


def test_run_point_engine_analytic():
    r = run_point(
        "PiP-MColl", "allreduce", 2, 4, 65536, engine="analytic", measure=3
    )
    est = evaluate_point("pip-mcoll", "allreduce", 2, 4, 65536, measure=3)
    assert r.time == est.time
    assert r.samples == (est.time,) * 3
    assert r.internode_messages == est.internode_messages
    # plain primitives: must survive the pool/cache pickle round-trip
    assert pickle.loads(pickle.dumps(r)) == r
    assert isinstance(r.time, float)
    assert all(isinstance(s, float) for s in r.samples)
    assert isinstance(r.internode_messages, int)


def test_run_point_engine_analytic_rejects_tracing():
    from repro.sim.trace import Tracer

    with pytest.raises(ValueError, match="trace"):
        run_point("PiP-MColl", "allreduce", 2, 2, 512, engine="analytic",
                  tracer=Tracer())


def test_auto_never_resolves_to_analytic():
    from repro.bench.microbench import resolve_engine

    assert resolve_engine("auto", "pip-mcoll", "allreduce") in (
        "event", "dag"
    )


def test_analytic_validates_arguments():
    with pytest.raises(ValueError, match="measured"):
        evaluate_point("pip-mcoll", "allreduce", 2, 2, 512, measure=0)
    with pytest.raises(ValueError, match="empty"):
        evaluate_axis("pip-mcoll", "allreduce", 2, 2, ())
    with pytest.raises(ValueError, match="positive"):
        evaluate_axis("pip-mcoll", "allreduce", 2, 2, (0,))

"""Property tests: planner schedules check out on randomized shapes.

Two properties, over a deterministic pseudo-random sample of
``(nodes, procs_per_node, nbytes)`` shapes plus hand-picked edge cases:

1. every planner-backed (library, collective) combination produces a
   schedule that passes the static checker — sends matched, no cyclic
   waits, every buffer access in bounds;
2. the checker's abstract internode accounting equals the live
   simulator's hardware NIC accounting *exactly* (the same invariant
   :mod:`tests.core.test_comm_volume` checks by formula, here checked
   planner-vs-simulator).  Messages are compared below the tiny
   machine's eager threshold, where the wire protocol adds no control
   messages; bytes are compared everywhere.
"""

import random

import pytest

from repro.baselines.registry import make_library
from repro.bench.microbench import _make_body
from repro.core.tuning import Thresholds
from repro.hw import Topology, tiny_test_machine
from repro.sched.check import check_planned
from repro.sched.registry import plan_for, registry_combinations

#: checker-facing name -> benchmark registry name
_BENCH_NAME = {
    "pip-mcoll": "PiP-MColl",
    "pip-mcoll-small": "PiP-MColl-small",
    "pip-mpich": "PiP-MPICH",
    "openmpi": "OpenMPI",
}


def _random_shapes(n, seed=0x51C4ED):
    rng = random.Random(seed)
    shapes = []
    for _ in range(n):
        nodes = rng.randint(1, 9)
        ppn = rng.randint(1, 6)
        nbytes = rng.choice((1, 3, 16, 64, 257, 1024, 4096))
        shapes.append((nodes, ppn, nbytes))
    return shapes


#: randomized sample + degenerate edges (single node, single process per
#: node, single process total, and one wide shape)
SHAPES = _random_shapes(6) + [
    (1, 1, 64),
    (1, 5, 128),
    (2, 1, 32),
    (8, 16, 1024),
]

COMBOS = registry_combinations()


def _shape_id(shape):
    return f"{shape[0]}x{shape[1]}-{shape[2]}B"


# -- property 1: everything the planners emit passes the checker -----------


@pytest.mark.parametrize("shape", SHAPES, ids=_shape_id)
@pytest.mark.parametrize("combo", COMBOS, ids=lambda c: f"{c[0]}-{c[1]}")
def test_planned_schedule_passes_checker(combo, shape):
    library, collective = combo
    nodes, ppn, nbytes = shape
    piece = plan_for(library, collective, nodes, ppn, nbytes)
    report = check_planned(piece, ppn)  # raises CheckError on any violation
    assert report.nranks == nodes * ppn


@pytest.mark.parametrize("shape", SHAPES[:4], ids=_shape_id)
@pytest.mark.parametrize("collective", ["allgather", "allreduce"])
@pytest.mark.parametrize(
    "thresholds",
    [Thresholds.always_small(), Thresholds.always_large()],
    ids=["forced-small", "forced-large"],
)
def test_both_algorithm_variants_pass_checker(collective, shape, thresholds):
    """Threshold ablations force each algorithm at sizes it would not
    normally see; both variants must still verify."""
    nodes, ppn, nbytes = shape
    piece = plan_for(
        "pip-mcoll", collective, nodes, ppn, nbytes, thresholds=thresholds
    )
    check_planned(piece, ppn)


# -- property 2: abstract accounting == simulated hardware accounting ------


def _simulate(library, collective, nodes, ppn, nbytes):
    """One live iteration on the tiny test machine; returns the World."""
    lib = make_library(_BENCH_NAME[library])
    world = lib.make_world(
        Topology(nodes, ppn), tiny_test_machine(), phantom=True
    )
    world.run(_make_body(lib, world, collective, nbytes))
    return world


@pytest.mark.parametrize("shape", SHAPES[:5] + [(1, 1, 64)], ids=_shape_id)
@pytest.mark.parametrize("combo", COMBOS, ids=lambda c: f"{c[0]}-{c[1]}")
def test_checker_volume_matches_simulator(combo, shape):
    library, collective = combo
    nodes, ppn, nbytes = shape
    report = check_planned(plan_for(library, collective, nodes, ppn, nbytes),
                           ppn)
    world = _simulate(library, collective, nodes, ppn, nbytes)
    assert report.internode_bytes == world.hw.total_internode_bytes()
    # below the eager threshold the wire adds no control messages, so
    # message counts must agree exactly as well (all SHAPES sizes qualify)
    assert report.internode_messages == world.hw.total_internode_messages()

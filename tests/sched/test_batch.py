"""Cross-engine equivalence: the batch column engine vs the DAG engine.

The batch engine's contract is the DAG engine's, inherited transitively:
for every (point, size), ``evaluate_column`` must reproduce the scalar
DAG samples and message counts exactly — same floats, not "close" floats.
The interesting axes are the ones that stress the fallback machinery:
size axes straddling the eager/rendezvous threshold and the hybrid
intranode-mechanism threshold (partition splits), contended columns where
the conflict check flags order divergence (DAG fallback), and forced
all-divergent passes (the bail-out seam).
"""

import random

import numpy as np
import pytest

from repro.bench.microbench import run_point
from repro.core.tuning import Thresholds
from repro.sched.batch import (
    clear_lowering_cache,
    evaluate_column,
    lowering_cache_info,
)
from repro.sched.fastpath import evaluate_point
from repro.sched.registry import planner_cache_info, registry_combinations
from repro.sim.batchline import BatchTimeline

#: canonical registry name -> the benchmark-facing display name
BENCH_NAME = {
    "pip-mcoll": "PiP-MColl",
    "pip-mcoll-small": "PiP-MColl-small",
    "pip-mpich": "PiP-MPICH",
    "openmpi": "OpenMPI",
}

#: straddles the 16 KB eager/rendezvous default, the hybrid intranode
#: thresholds, and the PiP-MColl 64 KB algorithm switches
STRADDLE_AXIS = (16, 512, 4096, 16384, 32768, 65536, 131072, 262144)


def _assert_column_identical(lib, coll, nodes, ppn, sizes, **kw):
    col = evaluate_column(BENCH_NAME[lib], coll, nodes, ppn, sizes, **kw)
    assert set(col.results) == set(sizes)
    for s in sizes:
        ref = evaluate_point(lib, coll, nodes, ppn, s, **kw)
        got = col.results[s]
        label = f"{lib}/{coll} {nodes}x{ppn} {s}B"
        assert got.samples == ref.samples, label
        assert got.internode_messages == ref.internode_messages, label
    return col


# -- the acceptance grid: every registry pair, threshold-straddling axes --


@pytest.mark.parametrize("lib,coll", registry_combinations())
def test_column_identical_on_registry_grid(lib, coll):
    for nodes, ppn in ((2, 2), (3, 4)):
        _assert_column_identical(lib, coll, nodes, ppn, STRADDLE_AXIS)


def test_column_identical_on_randomized_shapes():
    """Fixed-seed fuzz over shapes, axes, and iteration protocols."""
    rng = random.Random(7)
    combos = registry_combinations()
    pool = (16, 96, 1024, 4096, 16384, 32768, 65536, 131072, 262144)
    for _ in range(8):
        lib, coll = rng.choice(combos)
        nodes = rng.randint(2, 4)
        ppn = rng.randint(1, 4)
        sizes = tuple(sorted(rng.sample(pool, rng.randint(2, 6))))
        _assert_column_identical(
            lib, coll, nodes, ppn, sizes,
            warmup=rng.randint(0, 2), measure=rng.randint(1, 3),
        )


# -- fallback seams -------------------------------------------------------


def test_threshold_straddling_axis_partitions():
    """An axis across protocol thresholds must split, not diverge."""
    col = _assert_column_identical(
        "pip-mcoll", "allgather", 2, 4,
        (512, 8192, 16384, 32768, 262144),
    )
    # the eager/rendezvous switch alone forces at least two partitions
    assert len(col.stats.partitions) + len(col.stats.singleton_sizes) >= 2


def test_hybrid_mechanism_threshold_partitions():
    """OpenMPI's hybrid intranode mechanism splits at its threshold."""
    col = _assert_column_identical(
        "openmpi", "allgather", 2, 4, (64, 1024, 8192, 65536),
    )
    assert len(col.stats.partitions) + len(col.stats.singleton_sizes) >= 2


def test_forced_order_divergence_falls_back_to_dag(monkeypatch):
    """With every size flagged divergent, the engine must still be exact
    (everything re-evaluated on the DAG engine through the bail-out)."""

    def all_divergent(self):
        return np.ones(self.width, dtype=bool)

    monkeypatch.setattr(BatchTimeline, "order_divergence", all_divergent)
    col = _assert_column_identical(
        "pip-mcoll", "allgather", 2, 2, (512, 1024, 2048, 4096),
    )
    assert set(col.stats.fallback_sizes) | set(col.stats.singleton_sizes) \
        == {512, 1024, 2048, 4096}


def test_singleton_partition_routes_to_dag():
    col = _assert_column_identical("pip-mcoll", "scatter", 2, 2, (4096,))
    assert col.stats.singleton_sizes == (4096,)
    assert col.stats.partitions == ()


def test_rebatch_recursion_and_depth_exhaustion(monkeypatch):
    """Signature clusters re-batch under their own pivot until the depth
    bound, then fall back to the DAG engine — exactly either way.

    Stages divergence the conflict check would not naturally flag: every
    pass marks all but its pivot as one signature cluster, so the cluster
    re-batches (width shrinking by one per level) until ``_REBATCH_DEPTH``
    exhausts and the remainder drains to the DAG engine.  Results must be
    bit-identical throughout — including the accepted pivots' vectorized
    results and the carried warm-state of every re-batched pass.
    """

    def all_but_pivot(self):
        bad = np.ones(self.width, dtype=bool)
        bad[0] = False
        return bad if self.width >= 3 else np.zeros(self.width, dtype=bool)

    def one_cluster(self, divergent):
        labels = np.full(self.width, -1, dtype=np.int64)
        labels[divergent] = 0
        return labels

    monkeypatch.setattr(BatchTimeline, "order_divergence", all_but_pivot)
    monkeypatch.setattr(BatchTimeline, "divergence_labels", one_cluster)
    from repro.sched import batch as batch_mod

    monkeypatch.setattr(batch_mod, "_REBATCH_DEPTH", 2)
    clear_lowering_cache()
    sizes = (256, 512, 1024, 2048, 4096, 8192)
    col = _assert_column_identical("pip-mcoll", "scatter", 2, 2, sizes)
    # depth 0 (width 6) and depth 1 (width 5) each re-batch one cluster;
    # depth 2 hits the bound and drains the remaining flagged sizes
    assert col.stats.retries == 2
    assert col.stats.rebatch_depth == 2
    assert col.stats.fallback_sizes  # the depth-exhausted remainder
    clear_lowering_cache()


def test_outcome_cache_elides_adjudication_passes():
    """A pass known to accept at most its pivot is skipped on repeat
    evaluations (sizes go straight to the DAG engine) — bit-identically."""
    clear_lowering_cache()
    axis = (65536, 98304, 131072, 196608, 262144)
    col1 = _assert_column_identical("pip-mcoll", "allreduce", 4, 8, axis)
    assert col1.stats.elided_passes == 0
    assert col1.stats.fallback_sizes  # contention-bound column
    col2 = _assert_column_identical("pip-mcoll", "allreduce", 4, 8, axis)
    assert col2.stats.elided_passes >= 1
    for s in axis:
        assert col2.results[s] == col1.results[s]
    clear_lowering_cache()


# -- surface and argument checking ---------------------------------------


def test_batch_rejects_unsupported_pairs():
    with pytest.raises(ValueError, match="planner-backed"):
        evaluate_column("OpenMPI", "scatter", 2, 2, (512,))


def test_batch_rejects_threshold_overrides_without_thresholds():
    with pytest.raises(ValueError, match="thresholds"):
        evaluate_column(
            "PiP-MPICH", "allgather", 2, 2, (512,), thresholds=Thresholds()
        )


def test_batch_honours_threshold_overrides():
    kw = dict(thresholds=Thresholds.always_large())
    _assert_column_identical(
        "pip-mcoll", "allreduce", 2, 2, (512, 4096), **kw
    )


def test_batch_requires_measured_iteration():
    with pytest.raises(ValueError, match="measured"):
        evaluate_column("PiP-MColl", "allreduce", 2, 2, (512,), measure=0)


def test_batch_rejects_empty_axis():
    with pytest.raises(ValueError, match="empty"):
        evaluate_column("PiP-MColl", "allreduce", 2, 2, ())


# -- run_point / engine registry integration -----------------------------


def test_run_point_engine_batch_identical_to_dag():
    batch = run_point("PiP-MColl", "allreduce", 2, 2, 4096, engine="batch")
    dag = run_point("PiP-MColl", "allreduce", 2, 2, 4096, engine="dag")
    assert batch == dag


def test_run_point_engine_batch_rejects_tracing():
    from repro.sim.trace import Tracer

    with pytest.raises(ValueError, match="trace"):
        run_point("PiP-MColl", "allreduce", 2, 2, 512, engine="batch",
                  tracer=Tracer())


# -- lowering cache -------------------------------------------------------


def test_repeated_columns_do_not_relower():
    clear_lowering_cache()
    sizes = (512, 1024, 4096)
    evaluate_column("PiP-MColl", "allgather", 2, 3, sizes)
    first = lowering_cache_info()
    assert first.misses > 0 and first.currsize > 0
    evaluate_column("PiP-MColl", "allgather", 2, 3, sizes)
    second = lowering_cache_info()
    assert second.misses == first.misses
    assert second.hits > first.hits


def test_lowering_cache_reports_through_planner_window():
    info = planner_cache_info()
    assert "batch_lowering" in info
    li = info["batch_lowering"]
    assert li == lowering_cache_info()
    assert hasattr(li, "hits") and hasattr(li, "misses")

"""Cross-engine equivalence: the DAG fast path vs the event loop.

The fast path's whole contract is *bit-identical* timing: for every
planner-backed (library, collective) pair, ``engine="dag"`` must reproduce
the event loop's samples and message counts exactly — same floats, not
"close" floats — across the full registry grid and randomized shapes.
Anything less means the analytic evaluator serviced some resource queue in
a different order than the event loop would have, which is precisely the
class of bug equivalence testing exists to catch.
"""

import random

import pytest

from repro.bench.microbench import resolve_engine, run_point
from repro.sched.check import check_planned
from repro.sched.fastpath import (
    evaluate_point,
    evaluate_tables,
    fastpath_supported,
)
from repro.sched.registry import (
    plan_for,
    planner_cache_info,
    registry_combinations,
)

#: canonical registry name -> the benchmark-facing display name run_point
#: expects
BENCH_NAME = {
    "pip-mcoll": "PiP-MColl",
    "pip-mcoll-small": "PiP-MColl-small",
    "pip-mpich": "PiP-MPICH",
    "openmpi": "OpenMPI",
}

SHAPES = ((2, 2), (4, 3))
SIZES = (512, 32768, 131072)


def _assert_point_identical(lib, coll, nodes, ppn, nbytes, **kw):
    event = run_point(BENCH_NAME[lib], coll, nodes, ppn, nbytes,
                      engine="event", **kw)
    dag = run_point(BENCH_NAME[lib], coll, nodes, ppn, nbytes,
                    engine="dag", **kw)
    label = f"{lib}/{coll} {nodes}x{ppn} {nbytes}B"
    assert dag.samples == event.samples, label
    assert dag.internode_messages == event.internode_messages, label
    assert dag == event, label


# -- the acceptance grid: every registry pair x shapes x sizes ------------


@pytest.mark.parametrize("lib,coll", registry_combinations())
def test_cross_engine_identical_on_registry_grid(lib, coll):
    for nodes, ppn in SHAPES:
        for nbytes in SIZES:
            _assert_point_identical(lib, coll, nodes, ppn, nbytes)


def test_cross_engine_identical_on_randomized_shapes():
    """Fixed-seed fuzz over shapes, sizes, and iteration protocols."""
    rng = random.Random(0)
    combos = registry_combinations()
    for _ in range(12):
        lib, coll = rng.choice(combos)
        nodes = rng.randint(2, 5)
        ppn = rng.randint(1, 4)
        nbytes = rng.choice((16, 1024, 4096, 65536, 262144))
        warmup = rng.randint(0, 2)
        _assert_point_identical(
            lib, coll, nodes, ppn, nbytes, warmup=warmup, measure=3
        )


# -- traffic volumes: the DAG's accounting must match the static checker --


@pytest.mark.parametrize("lib,coll", registry_combinations())
def test_volume_tables_match_static_checker(lib, coll):
    nodes, ppn, nbytes = 4, 3, 4096
    tables = evaluate_tables(lib, coll, nodes, ppn, nbytes)
    planned = plan_for(lib, coll, nodes, ppn, nbytes)
    report = check_planned(planned, ppn)
    assert tables == report.per_rank


# -- engine selection and guard rails -------------------------------------


def test_auto_resolves_to_dag_only_where_supported():
    assert resolve_engine("auto", "PiP-MColl", "allreduce") == "dag"
    assert resolve_engine("auto", "pip_mcoll", "scatter") == "dag"
    assert resolve_engine("auto", "OpenMPI", "allgather") == "dag"
    # hierarchical baselines still run as generators
    assert resolve_engine("auto", "MVAPICH2", "allreduce") == "event"
    # non-planner-backed collectives of planner-backed libraries
    assert resolve_engine("auto", "PiP-MColl", "alltoall") == "event"
    assert resolve_engine("auto", "OpenMPI", "allreduce") == "event"
    # tracing always needs the event loop
    assert resolve_engine("auto", "PiP-MColl", "allreduce", tracing=True) \
        == "event"
    with pytest.raises(ValueError, match="unknown engine"):
        resolve_engine("fast", "PiP-MColl", "allreduce")


def test_fastpath_supported_matches_registry():
    for lib, coll in registry_combinations():
        assert fastpath_supported(BENCH_NAME[lib], coll)
    assert not fastpath_supported("MVAPICH2", "allreduce")
    assert not fastpath_supported("PiP-MPICH", "allreduce")
    assert not fastpath_supported("PiP-MColl", "bcast")


def test_dag_engine_rejects_unsupported_pairs():
    with pytest.raises(ValueError, match="planner-backed"):
        run_point("MVAPICH2", "allreduce", 2, 2, 512, engine="dag")
    with pytest.raises(ValueError, match="planner-backed"):
        evaluate_point("PiP-MPICH", "scatter", 2, 2, 512)


def test_dag_engine_rejects_tracing():
    from repro.sim.trace import Tracer

    with pytest.raises(ValueError, match="trace"):
        run_point("PiP-MColl", "allreduce", 2, 2, 512, engine="dag",
                  tracer=Tracer())


def test_auto_degrades_to_event_instead_of_raising():
    result = run_point("MVAPICH2", "allreduce", 2, 2, 512, engine="auto")
    reference = run_point("MVAPICH2", "allreduce", 2, 2, 512, engine="event")
    assert result == reference


def test_dag_engine_honours_threshold_overrides():
    from repro.core.tuning import Thresholds

    kw = dict(thresholds=Thresholds.always_large())
    _assert_point_identical("pip-mcoll", "allreduce", 2, 2, 512, **kw)
    with pytest.raises(ValueError, match="thresholds"):
        run_point("PiP-MPICH", "allgather", 2, 2, 512, engine="dag",
                  thresholds=Thresholds())


def test_dag_engine_requires_measured_iteration():
    with pytest.raises(ValueError, match="measured"):
        evaluate_point("PiP-MColl", "allreduce", 2, 2, 512, measure=0)


# -- planner cache: repeated sweep points must not re-plan ----------------


def test_repeated_points_do_not_replan():
    spec = ("PiP-MColl", "allreduce", 3, 2, 7168)
    run_point(*spec, engine="dag")  # plans on first sight (or earlier test)
    before = planner_cache_info()
    run_point(*spec, engine="dag")
    run_point(*spec, engine="event")  # executor wrappers share the caches
    after = planner_cache_info()
    assert set(after) == set(before) and len(after) == 9
    for name in after:
        assert after[name].misses == before[name].misses, name
    assert sum(i.hits for i in after.values()) > sum(
        i.hits for i in before.values()
    )

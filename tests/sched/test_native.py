"""The native engine's contract: bit-identical to the DAG fast path.

``engine="native"`` lowers the fastpath opcode programs to arrays and
replays them in the (conditionally numba-JIT) kernel of
:mod:`repro.sim.native_timeline`.  Its acceptance contract is the same
one the DAG engine signed against the event loop: *bit-identical*
samples and message counts for every planner-backed pair, across the
registry grid and randomized shapes.  ``force_interp=True`` runs the
kernel un-jitted, so the exact kernel logic is pinned on numba-free
installs too (the CI ``native-engine`` job runs this same suite with
numba installed, where ``get_kernels`` JIT-compiles the identical
source).
"""

import builtins
import random

import pytest

from repro.bench.microbench import resolve_engine, run_point
from repro.sched import native
from repro.sched.check import check_planned
from repro.sched.fastpath import evaluate_point as dag_evaluate_point
from repro.sched.native import (
    NativeBailout,
    evaluate_point,
    evaluate_tables,
    native_supported,
)
from repro.sched.registry import plan_for, registry_combinations
from repro.sim import native_timeline as nt

SHAPES = ((2, 2), (4, 3))
SIZES = (512, 32768, 131072)


def _assert_point_identical(lib, coll, nodes, ppn, nbytes, **kw):
    dag = dag_evaluate_point(lib, coll, nodes, ppn, nbytes, **kw)
    nat = evaluate_point(lib, coll, nodes, ppn, nbytes,
                         force_interp=True, **kw)
    label = f"{lib}/{coll} {nodes}x{ppn} {nbytes}B"
    assert nat.samples == dag.samples, label
    assert nat.internode_messages == dag.internode_messages, label


# -- the acceptance grid: every registry pair x shapes x sizes -------------


@pytest.mark.parametrize("lib,coll", registry_combinations())
def test_native_identical_to_dag_on_registry_grid(lib, coll):
    for nodes, ppn in SHAPES:
        for nbytes in SIZES:
            _assert_point_identical(lib, coll, nodes, ppn, nbytes)


def test_native_identical_on_randomized_shapes():
    """Fixed-seed fuzz over shapes, sizes, and iteration protocols —
    exercises rendezvous, eager, and flat-baseline paths alike."""
    rng = random.Random(0)
    combos = registry_combinations()
    for _ in range(12):
        lib, coll = rng.choice(combos)
        nodes = rng.randint(2, 5)
        ppn = rng.randint(1, 4)
        nbytes = rng.choice((16, 1024, 4096, 65536, 262144))
        warmup = rng.randint(0, 2)
        _assert_point_identical(
            lib, coll, nodes, ppn, nbytes, warmup=warmup, measure=3
        )


def test_native_through_run_point_matches_dag():
    nat = run_point("PiP-MColl", "allreduce", 2, 2, 4096, engine="native")
    dag = run_point("PiP-MColl", "allreduce", 2, 2, 4096, engine="dag")
    assert nat == dag


def test_native_honours_threshold_overrides():
    from repro.core.tuning import Thresholds

    kw = dict(thresholds=Thresholds.always_large())
    _assert_point_identical("pip-mcoll", "allreduce", 2, 2, 512, **kw)


# -- traffic volumes vs the static checker ---------------------------------


@pytest.mark.parametrize("lib,coll", registry_combinations())
def test_volume_tables_match_static_checker(lib, coll):
    nodes, ppn, nbytes = 4, 3, 4096
    tables = evaluate_tables(lib, coll, nodes, ppn, nbytes,
                             force_interp=True)
    planned = plan_for(lib, coll, nodes, ppn, nbytes)
    report = check_planned(planned, ppn)
    assert tables == report.per_rank


# -- fallback: numba absent or disabled ------------------------------------


def _block_numba(monkeypatch):
    monkeypatch.delenv("PIPMCOLL_NO_NATIVE", raising=False)
    real_import = builtins.__import__

    def blocked(name, *args, **kwargs):
        if name == "numba" or name.startswith("numba."):
            raise ImportError("numba blocked for this test")
        return real_import(name, *args, **kwargs)

    monkeypatch.setattr(builtins, "__import__", blocked)


def test_run_point_falls_back_to_dag_without_numba(monkeypatch):
    _block_numba(monkeypatch)
    assert not native.native_available()

    def boom(*args, **kwargs):  # the native evaluator must not be touched
        raise AssertionError("native evaluator called despite numba absent")

    monkeypatch.setattr(native, "evaluate_point", boom)
    result = run_point("PiP-MColl", "scatter", 2, 2, 512, engine="native")
    reference = run_point("PiP-MColl", "scatter", 2, 2, 512, engine="dag")
    assert result == reference


def test_escape_hatch_disables_native(monkeypatch):
    monkeypatch.setenv("PIPMCOLL_NO_NATIVE", "1")
    assert not native.native_available()
    assert nt.kernel_mode() == "interp"


def test_auto_prefers_native_when_jit_available(monkeypatch):
    monkeypatch.setattr(nt, "jit_available", lambda: True)
    assert resolve_engine("auto", "PiP-MColl", "allreduce") == "native"
    # non-planner-backed pairs still run as generators
    assert resolve_engine("auto", "MVAPICH2", "allreduce") == "event"
    monkeypatch.setattr(nt, "jit_available", lambda: False)
    assert resolve_engine("auto", "PiP-MColl", "allreduce") == "dag"


def test_native_bailout_falls_back_to_dag(monkeypatch):
    monkeypatch.setattr(nt, "jit_available", lambda: True)

    def bail(*args, **kwargs):
        raise NativeBailout("synthetic bail")

    monkeypatch.setattr(native, "evaluate_point", bail)
    result = run_point("PiP-MColl", "scatter", 2, 2, 512, engine="native")
    reference = run_point("PiP-MColl", "scatter", 2, 2, 512, engine="dag")
    assert result == reference


# -- guard rails -----------------------------------------------------------


def test_native_rejects_unsupported_pairs():
    assert not native_supported("PiP-MPICH", "allreduce")
    with pytest.raises(ValueError, match="planner-backed"):
        evaluate_point("PiP-MPICH", "scatter", 2, 2, 512)


def test_native_rejects_tracing():
    from repro.sim.trace import Tracer

    with pytest.raises(ValueError, match="trace"):
        run_point("PiP-MColl", "allreduce", 2, 2, 512, engine="native",
                  tracer=Tracer())


def test_native_requires_measured_iteration():
    with pytest.raises(ValueError, match="measured"):
        evaluate_point("PiP-MColl", "allreduce", 2, 2, 512, measure=0)


# -- warmup cache: kernels build once, never rebuild -----------------------


def test_kernel_cache_returns_same_object():
    first = nt.get_kernels(force_interp=True)
    assert nt.get_kernels(force_interp=True) is first
    assert first["mode"] == "interp"


def test_repeat_evaluations_do_not_rebuild_kernels():
    evaluate_point("pip-mcoll", "scatter", 2, 2, 64, force_interp=True)
    before = nt.build_count
    for _ in range(3):
        evaluate_point("pip-mcoll", "scatter", 2, 2, 64, force_interp=True)
        evaluate_point("pip-mcoll", "allreduce", 2, 3, 2048,
                       force_interp=True)
    assert nt.build_count == before


def test_warm_kernels_is_idempotent_and_no_recompile():
    mode = native.warm_kernels()
    assert mode in ("jit", "interp")
    kernels = nt.get_kernels()
    before = nt.build_count
    if mode == "jit":  # pragma: no cover - needs numba installed
        sigs = len(kernels["replay"].signatures)
    assert native.warm_kernels() == mode
    assert nt.build_count == before
    assert nt.get_kernels() is kernels
    if mode == "jit":  # pragma: no cover - needs numba installed
        # warm again on the same grid point: no new specialization
        evaluate_point("pip-mcoll", "scatter", 2, 2, 64)
        assert len(kernels["replay"].signatures) == sigs

"""Unit tests for :mod:`repro.sched.check` — the static schedule checker.

Hand-built miniature schedules exercise each failure class the checker
exists to catch (unmatched sends, cyclic waits, out-of-bounds buffer
views, size mismatches, duplicate board posts), plus the accounting
split between internode and intranode traffic.  The CLI surface is
covered at the bottom.
"""

import pytest

from repro.sched.check import CheckError, check_schedule, main
from repro.sched.emit import Emitter
from repro.sched.ir import BufRef, Schedule


def _two_rank_schedule(build0, build1, label="test"):
    e0, e1 = Emitter(), Emitter()
    build0(e0)
    build1(e1)
    return Schedule(programs=(e0.build(), e1.build()), label=label)


BINDINGS = ({"buf": 64}, {"buf": 64})
RANKS = (0, 1)


# -- the happy path --------------------------------------------------------


def test_matched_send_recv_passes_and_counts_internode_bytes():
    def send(e):
        e.phase("exchange")
        e.wait(e.isend(1, BufRef("buf"), tag=7))

    def recv(e):
        e.phase("exchange")
        e.wait(e.irecv(0, BufRef("buf"), tag=7))

    sched = _two_rank_schedule(send, recv)
    # ppn=1: ranks 0 and 1 sit on different nodes -> internode traffic
    report = check_schedule(sched, RANKS, BINDINGS, ppn=1)
    assert report.internode_messages == 1
    assert report.internode_bytes == 64
    assert "exchange" in report.phases


def test_same_node_traffic_counts_as_intranode():
    def send(e):
        e.wait(e.isend(1, BufRef("buf"), tag=7))

    def recv(e):
        e.wait(e.irecv(0, BufRef("buf"), tag=7))

    sched = _two_rank_schedule(send, recv)
    # ppn=2: both ranks share node 0 -> no internode traffic at all
    report = check_schedule(sched, RANKS, BINDINGS, ppn=2)
    assert report.internode_messages == 0
    assert report.internode_bytes == 0
    totals = report.totals()
    assert totals[2] == 1  # intranode messages
    assert totals[3] == 64  # intranode bytes


def test_format_table_mentions_phases_and_columns():
    def send(e):
        e.phase("p2p")
        e.wait(e.isend(1, BufRef("buf"), tag=0))

    def recv(e):
        e.phase("p2p")
        e.wait(e.irecv(0, BufRef("buf"), tag=0))

    report = check_schedule(
        _two_rank_schedule(send, recv), RANKS, BINDINGS, ppn=1
    )
    table = report.format_table()
    assert "p2p" in table
    assert "inter-bytes" in table


# -- failure classes -------------------------------------------------------


def test_unmatched_send_is_an_error():
    def send(e):
        # fire-and-forget: the program completes, but the message is
        # never received anywhere
        e.isend(1, BufRef("buf"), tag=7)

    def idle(e):
        pass

    sched = _two_rank_schedule(send, idle)
    with pytest.raises(CheckError, match="unmatched"):
        check_schedule(sched, RANKS, BINDINGS, ppn=1)


def test_waiting_on_an_unreceived_send_reports_deadlock():
    def send(e):
        # the wait can never complete: nobody posts the matching receive
        e.wait(e.isend(1, BufRef("buf"), tag=7))

    def idle(e):
        pass

    sched = _two_rank_schedule(send, idle)
    with pytest.raises(CheckError, match="[Dd]eadlock"):
        check_schedule(sched, RANKS, BINDINGS, ppn=1)


def test_cyclic_wait_reports_deadlock():
    def recv_from_other(src):
        def build(e):
            e.wait(e.irecv(src, BufRef("buf"), tag=7))
        return build

    # both ranks block on a receive that nobody will ever send
    sched = _two_rank_schedule(recv_from_other(1), recv_from_other(0))
    with pytest.raises(CheckError, match="[Dd]eadlock"):
        check_schedule(sched, RANKS, BINDINGS, ppn=1)


def test_out_of_bounds_view_is_an_error():
    def send(e):
        # buf holds 64 elements; this view reads past the end
        e.wait(e.isend(1, BufRef("buf").view(32, 64), tag=7))

    def recv(e):
        e.wait(e.irecv(0, BufRef("buf"), tag=7))

    sched = _two_rank_schedule(send, recv)
    with pytest.raises(CheckError, match="bounds|past|exceeds"):
        check_schedule(sched, RANKS, BINDINGS, ppn=1)


def test_send_recv_size_mismatch_is_an_error():
    def send(e):
        e.wait(e.isend(1, BufRef("buf"), tag=7))

    def recv(e):
        e.wait(e.irecv(0, BufRef("buf").view(0, 32), tag=7))

    sched = _two_rank_schedule(send, recv)
    with pytest.raises(CheckError, match="receive buffer holds"):
        check_schedule(sched, RANKS, BINDINGS, ppn=1)


def test_duplicate_board_post_on_one_node_is_an_error():
    def post(e):
        e.post(("k",), BufRef("buf"))

    # ppn=2 puts both ranks on the same node -> same board, same key
    sched = _two_rank_schedule(post, post)
    with pytest.raises(CheckError, match="post|duplicate"):
        check_schedule(sched, RANKS, BINDINGS, ppn=2)


def test_lookup_of_never_posted_key_deadlocks():
    def lookup(e):
        e.lookup(("missing",), bind="stage")

    def idle(e):
        pass

    sched = _two_rank_schedule(lookup, idle)
    with pytest.raises(CheckError, match="[Dd]eadlock"):
        check_schedule(sched, RANKS, BINDINGS, ppn=2)


# -- CLI -------------------------------------------------------------------


def test_cli_single_point_prints_table_and_exits_zero(capsys):
    rc = main([
        "--library", "pip-mcoll", "--collective", "allreduce",
        "--np", "2x2", "--nbytes", "4K",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "inter-bytes" in out
    assert "checker: OK" in out


def test_cli_accepts_issue_invocation_verbatim(capsys):
    # the documented invocation: 8x16 at 64K
    rc = main([
        "--library", "pip-mcoll", "--collective", "allreduce",
        "--np", "8x16", "--nbytes", "64K",
    ])
    assert rc == 0


def test_cli_unplanned_library_exits_nonzero(capsys):
    rc = main([
        "--library", "mvapich2", "--collective", "allreduce",
        "--np", "2x2", "--nbytes", "4K",
    ])
    assert rc == 2
    assert "error" in capsys.readouterr().err


def test_cli_baseline_collective_without_planner_exits_nonzero(capsys):
    rc = main([
        "--library", "pip-mpich", "--collective", "allreduce",
        "--np", "2x2", "--nbytes", "4K",
    ])
    assert rc == 2


def test_cli_missing_arguments_rejected():
    with pytest.raises(SystemExit):
        main(["--library", "pip-mcoll"])


def test_cli_bad_shape_rejected():
    with pytest.raises(SystemExit):
        main([
            "--library", "pip-mcoll", "--collective", "allreduce",
            "--np", "eight-by-two", "--nbytes", "4K",
        ])

"""Failure-injection and misuse tests: the simulator surfaces bugs in
simulated MPI programs loudly instead of hanging or corrupting data."""

import numpy as np
import pytest

from repro.hw import Topology, tiny_test_machine
from repro.mpi import BYTE, Buffer, World
from repro.shmem import KernelCopy, PipShmem, PosixShmem
from repro.sim import DeadlockError


def make_world(mechanism=None, nodes=2, ppn=2):
    return World(
        Topology(nodes, ppn), tiny_test_machine(),
        mechanism=mechanism or PosixShmem(),
    )


class TestDeadlockDetection:
    def test_recv_without_send_deadlocks(self):
        world = make_world()
        buf = Buffer.alloc(BYTE, 8)

        def body(ctx):
            if ctx.rank == 0:
                yield from ctx.recv(1, buf, tag=0)

        with pytest.raises(DeadlockError, match="blocked"):
            world.run(body)

    def test_tag_mismatch_deadlocks(self):
        world = make_world(mechanism=PipShmem())
        a, b = Buffer.alloc(BYTE, 8), Buffer.alloc(BYTE, 8)

        def body(ctx):
            if ctx.rank == 0:
                yield from ctx.send(1, a, tag=1)
            elif ctx.rank == 1:
                yield from ctx.recv(0, b, tag=2)  # wrong tag

        with pytest.raises(DeadlockError):
            world.run(body)

    def test_synchronous_send_cycle_deadlocks(self):
        """Two blocking sends over a non-eager mechanism deadlock, exactly
        like real MPI rendezvous sends would."""
        world = make_world(mechanism=KernelCopy())
        a, b = Buffer.alloc(BYTE, 8), Buffer.alloc(BYTE, 8)

        def body(ctx):
            peer = 1 - ctx.rank
            if ctx.rank <= 1:
                yield from ctx.send(peer, a if ctx.rank == 0 else b, tag=0)
                yield from ctx.recv(peer, a if ctx.rank == 1 else b, tag=0)

        with pytest.raises(DeadlockError):
            world.run(body)

    def test_eager_send_cycle_completes(self):
        """The same cycle over the eager POSIX path completes, exactly
        like real MPI eager sends would."""
        world = make_world(mechanism=PosixShmem())
        bufs = [Buffer.real(np.full(8, r, dtype=np.uint8)) for r in range(2)]
        recvs = [Buffer.alloc(BYTE, 8) for _ in range(2)]

        def body(ctx):
            peer = 1 - ctx.rank
            if ctx.rank <= 1:
                yield from ctx.send(peer, bufs[ctx.rank], tag=0)
                yield from ctx.recv(peer, recvs[ctx.rank], tag=0)

        world.run(body)
        assert np.all(recvs[0].array() == 1)
        assert np.all(recvs[1].array() == 0)

    def test_partial_collective_participation_deadlocks(self):
        """A rank skipping a collective hangs the others — as in MPI."""
        from repro.core import mcoll_allreduce_small
        from repro.mpi import DOUBLE, SUM

        world = make_world(mechanism=PipShmem(), nodes=2, ppn=2)
        sends = [Buffer.alloc(DOUBLE, 4) for _ in range(4)]
        recvs = [Buffer.alloc(DOUBLE, 4) for _ in range(4)]

        def body(ctx):
            if ctx.rank == 3:
                return
                yield  # pragma: no cover
            yield from mcoll_allreduce_small(
                ctx, sends[ctx.rank], recvs[ctx.rank], SUM
            )

        with pytest.raises(DeadlockError):
            world.run(body)


class TestMisuseErrors:
    def test_self_send_rejected(self):
        world = make_world()
        buf = Buffer.alloc(BYTE, 8)

        def body(ctx):
            if ctx.rank == 0:
                yield from ctx.send(0, buf, tag=0)

        with pytest.raises(Exception, match="self-send"):
            world.run(body)

    def test_intranode_without_mechanism_rejected(self):
        world = World(Topology(1, 2), tiny_test_machine(), mechanism=None)
        buf = Buffer.alloc(BYTE, 8)

        def body(ctx):
            if ctx.rank == 0:
                yield from ctx.send(1, buf, tag=0)
            else:
                yield from ctx.recv(0, buf, tag=0)

        with pytest.raises(ValueError, match="mechanism"):
            world.run(body)

    def test_recv_size_mismatch_raises_not_corrupts(self):
        world = make_world(mechanism=PipShmem())
        small = Buffer.alloc(BYTE, 4)
        big = Buffer.alloc(BYTE, 8)

        def body(ctx):
            if ctx.rank == 0:
                yield from ctx.send(1, big, tag=0)
            elif ctx.rank == 1:
                yield from ctx.recv(0, small, tag=0)

        with pytest.raises(Exception, match="4B|8B"):
            world.run(body)

    def test_exception_in_rank_body_propagates(self):
        world = make_world()

        def body(ctx):
            yield from ctx.compute(1e-6)
            if ctx.rank == 2:
                raise RuntimeError("rank 2 exploded")

        with pytest.raises(RuntimeError, match="rank 2 exploded"):
            world.run(body)

"""Tests for process groups."""

import pytest
from hypothesis import given, strategies as st

from repro.mpi.collectives import Group


class TestGroup:
    def test_basic(self):
        g = Group([4, 2, 9])
        assert g.size == 3
        assert g.rank_at(0) == 4
        assert g.rank_at(2) == 9
        assert g.index_of(2) == 1
        assert 9 in g and 5 not in g

    def test_rank_at_wraps(self):
        g = Group([10, 20, 30])
        assert g.rank_at(3) == 10
        assert g.rank_at(-1) == 30

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            Group([])

    def test_duplicates_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Group([1, 2, 1])

    def test_index_of_missing_rank(self):
        with pytest.raises(ValueError, match="not in group"):
            Group([0, 1]).index_of(7)

    def test_tag_key_depends_on_membership_and_order(self):
        assert Group([0, 1, 2]).tag_key == Group([0, 1, 2]).tag_key
        assert Group([0, 1, 2]).tag_key != Group([0, 1, 3]).tag_key
        assert Group([0, 1, 2]).tag_key != Group([2, 1, 0]).tag_key

    @given(st.lists(st.integers(0, 1000), min_size=1, max_size=50, unique=True))
    def test_index_roundtrip(self, ranks):
        g = Group(ranks)
        for i, r in enumerate(ranks):
            assert g.index_of(r) == i
            assert g.rank_at(i) == r

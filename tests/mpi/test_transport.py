"""Tests for p2p transport: matching, eager/rendezvous, intranode mechanisms."""

import numpy as np
import pytest

from repro.hw import Topology, tiny_test_machine
from repro.mpi import BYTE, DOUBLE, INT64, Buffer, ValidationError, World
from repro.shmem import KernelCopy, PipShmem, PosixShmem, Xpmem


def make_world(nodes=2, ppn=2, mechanism=None, validate=False, **overrides):
    params = tiny_test_machine()
    if overrides:
        params = params.with_overrides(**overrides)
    return World(Topology(nodes, ppn), params,
                 mechanism=mechanism or PosixShmem(), validate=validate)


def exchange(world, src, dst, nbytes, fill=7):
    """Send nbytes from src to dst; return (recv_array, elapsed)."""
    sendbuf = Buffer.real(np.full(nbytes, fill, dtype=np.uint8))
    recvbuf = Buffer.alloc(BYTE, nbytes)

    def body(ctx):
        if ctx.rank == src:
            yield from ctx.send(dst, sendbuf, tag=1)
        elif ctx.rank == dst:
            yield from ctx.recv(src, recvbuf, tag=1)
        else:
            return
            yield  # pragma: no cover

    result = world.run(body)
    return recvbuf.array(), result.elapsed


class TestInternodeEager:
    def test_data_arrives(self):
        world = make_world()
        data, elapsed = exchange(world, 0, 2, 64)
        assert np.all(data == 7)
        assert elapsed > 0

    def test_latency_composition(self):
        world = make_world()
        p = world.params
        _, elapsed = exchange(world, 0, 2, 16)
        # send_overhead + injection gap (the slowest pipeline stage for a
        # tiny message) + wire latency + recv_overhead
        expected = (
            p.send_overhead
            + 1.0 / p.proc_msg_rate
            + p.wire_latency
            + p.recv_overhead
        )
        assert elapsed == pytest.approx(expected, rel=1e-9)

    def test_unexpected_message_costs_extra_copy(self):
        """Receiver posting late pays the bounce-buffer copy."""
        world = make_world()
        p = world.params
        nbytes = 4096
        sendbuf = Buffer.real(np.full(nbytes, 3, dtype=np.uint8))
        recvbuf = Buffer.alloc(BYTE, nbytes)
        late = 1e-3  # recv posted long after arrival

        def body(ctx):
            if ctx.rank == 0:
                yield from ctx.send(2, sendbuf, tag=0)
            elif ctx.rank == 2:
                yield from ctx.compute(late)
                yield from ctx.recv(0, recvbuf, tag=0)

        res = world.run(body)
        assert np.all(recvbuf.array() == 3)
        # must include the unexpected-queue copy-out after `late`
        assert res.elapsed >= late + nbytes / p.core_copy_bw

    def test_sender_may_reuse_buffer_after_send(self):
        """Eager snapshot: mutating the send buffer after completion is safe."""
        world = make_world()
        nbytes = 32
        sendbuf = Buffer.real(np.full(nbytes, 1, dtype=np.uint8))
        recvbuf = Buffer.alloc(BYTE, nbytes)

        def body(ctx):
            if ctx.rank == 0:
                yield from ctx.send(2, sendbuf, tag=0)
                sendbuf.fill(99)  # reuse immediately
            elif ctx.rank == 2:
                yield from ctx.compute(1e-3)  # receive long after the overwrite
                yield from ctx.recv(0, recvbuf, tag=0)

        world.run(body)
        assert np.all(recvbuf.array() == 1)


class TestInternodeRendezvous:
    def test_large_message_uses_rendezvous_and_arrives(self):
        world = make_world()
        nbytes = world.params.eager_threshold + 1024
        data, elapsed = exchange(world, 0, 2, nbytes)
        assert np.all(data == 7)
        p = world.params
        # must include at least one extra round trip vs pure streaming
        assert elapsed > nbytes / p.nic_bandwidth + 2 * p.wire_latency

    def test_rendezvous_blocks_sender_until_receiver_posts(self):
        world = make_world()
        nbytes = world.params.eager_threshold * 2
        sendbuf = Buffer.real(np.zeros(nbytes, dtype=np.uint8))
        recvbuf = Buffer.alloc(BYTE, nbytes)
        send_done_at = [0.0]
        delay = 5e-3

        def body(ctx):
            if ctx.rank == 0:
                yield from ctx.send(2, sendbuf, tag=0)
                send_done_at[0] = ctx.world.engine.now
            elif ctx.rank == 2:
                yield from ctx.compute(delay)
                yield from ctx.recv(0, recvbuf, tag=0)

        world.run(body)
        assert send_done_at[0] >= delay


class TestMatching:
    def test_tags_disambiguate(self):
        world = make_world()
        b1 = Buffer.real(np.full(8, 1, dtype=np.uint8))
        b2 = Buffer.real(np.full(8, 2, dtype=np.uint8))
        r1 = Buffer.alloc(BYTE, 8)
        r2 = Buffer.alloc(BYTE, 8)

        def body(ctx):
            if ctx.rank == 0:
                yield from ctx.send(2, b1, tag=10)
                yield from ctx.send(2, b2, tag=20)
            elif ctx.rank == 2:
                # receive in reverse tag order
                yield from ctx.recv(0, r2, tag=20)
                yield from ctx.recv(0, r1, tag=10)

        world.run(body)
        assert np.all(r1.array() == 1)
        assert np.all(r2.array() == 2)

    def test_same_tag_non_overtaking(self):
        world = make_world()
        bufs = [Buffer.real(np.full(8, i, dtype=np.uint8)) for i in range(3)]
        recvs = [Buffer.alloc(BYTE, 8) for _ in range(3)]

        def body(ctx):
            if ctx.rank == 0:
                for b in bufs:
                    yield from ctx.send(2, b, tag=5)
            elif ctx.rank == 2:
                for r in recvs:
                    yield from ctx.recv(0, r, tag=5)

        world.run(body)
        for i, r in enumerate(recvs):
            assert np.all(r.array() == i)

    def test_size_mismatch_raises(self):
        world = make_world()
        sendbuf = Buffer.alloc(BYTE, 8)
        recvbuf = Buffer.alloc(BYTE, 16)

        def body(ctx):
            if ctx.rank == 0:
                yield from ctx.send(2, sendbuf, tag=0)
            elif ctx.rank == 2:
                yield from ctx.recv(0, recvbuf, tag=0)

        with pytest.raises(Exception, match="16B.*8B|8B.*16B"):
            world.run(body)

    def test_sendrecv_bidirectional_no_deadlock(self):
        world = make_world(mechanism=PipShmem())  # non-eager mechanism
        a = Buffer.real(np.full(8, 1, dtype=np.uint8))
        b = Buffer.real(np.full(8, 2, dtype=np.uint8))
        ra = Buffer.alloc(BYTE, 8)
        rb = Buffer.alloc(BYTE, 8)

        def body(ctx):
            if ctx.rank == 0:
                yield from ctx.sendrecv(1, a, 1, ra, tag=0)
            elif ctx.rank == 1:
                yield from ctx.sendrecv(0, b, 0, rb, tag=0)

        world.run(body)
        assert np.all(ra.array() == 2)
        assert np.all(rb.array() == 1)


class TestIntranodeMechanisms:
    @pytest.mark.parametrize(
        "mech_factory", [PosixShmem, KernelCopy, Xpmem, PipShmem]
    )
    def test_data_arrives(self, mech_factory):
        world = make_world(mechanism=mech_factory())
        data, elapsed = exchange(world, 0, 1, 256)
        assert np.all(data == 7)
        assert elapsed > 0

    def test_posix_is_eager(self):
        """POSIX sender completes without the receiver posting."""
        world = make_world(mechanism=PosixShmem())
        sendbuf = Buffer.alloc(BYTE, 64)
        recvbuf = Buffer.alloc(BYTE, 64)
        send_done = [0.0]
        delay = 1e-2

        def body(ctx):
            if ctx.rank == 0:
                yield from ctx.send(1, sendbuf, tag=0)
                send_done[0] = ctx.world.engine.now
            elif ctx.rank == 1:
                yield from ctx.compute(delay)
                yield from ctx.recv(0, recvbuf, tag=0)

        world.run(body)
        assert send_done[0] < delay

    def test_kernel_copy_blocks_sender_until_receiver(self):
        world = make_world(mechanism=KernelCopy())
        sendbuf = Buffer.alloc(BYTE, 64)
        recvbuf = Buffer.alloc(BYTE, 64)
        send_done = [0.0]
        delay = 1e-2

        def body(ctx):
            if ctx.rank == 0:
                yield from ctx.send(1, sendbuf, tag=0)
                send_done[0] = ctx.world.engine.now
            elif ctx.rank == 1:
                yield from ctx.compute(delay)
                yield from ctx.recv(0, recvbuf, tag=0)

        world.run(body)
        assert send_done[0] >= delay

    def test_posix_double_copy_slower_than_pip_for_large(self):
        nbytes = 1 << 20
        _, t_posix = exchange(make_world(mechanism=PosixShmem()), 0, 1, nbytes)
        _, t_pip = exchange(make_world(mechanism=PipShmem()), 0, 1, nbytes)
        assert t_pip < t_posix

    def test_pip_sizesync_hurts_small_messages(self):
        _, t_posix = exchange(make_world(mechanism=PosixShmem()), 0, 1, 16)
        _, t_pip = exchange(make_world(mechanism=PipShmem()), 0, 1, 16)
        assert t_posix < t_pip

    def test_kernel_copy_pays_syscall_and_faults_once(self):
        world = make_world(mechanism=KernelCopy())
        p = world.params
        nbytes = 4 * p.page_size
        sendbuf = Buffer.alloc(BYTE, nbytes)
        recvbuf = Buffer.alloc(BYTE, nbytes)
        times = []

        def body(ctx):
            for i in range(2):
                t0 = ctx.world.engine.now
                if ctx.rank == 0:
                    yield from ctx.send(1, sendbuf, tag=i)
                elif ctx.rank == 1:
                    yield from ctx.recv(0, recvbuf, tag=i)
                    times.append(ctx.world.engine.now - t0)

        world.run(body)
        # second transfer reuses warm pages: strictly cheaper
        assert times[1] < times[0]
        assert times[0] - times[1] == pytest.approx(4 * p.page_fault_time, rel=1e-6)

    def test_xpmem_attach_cached_after_first_use(self):
        world = make_world(mechanism=Xpmem())
        p = world.params
        sendbuf = Buffer.alloc(BYTE, 64)
        recvbuf = Buffer.alloc(BYTE, 64)
        times = []

        def body(ctx):
            for i in range(2):
                t0 = ctx.world.engine.now
                if ctx.rank == 0:
                    yield from ctx.send(1, sendbuf, tag=i)
                elif ctx.rank == 1:
                    yield from ctx.recv(0, recvbuf, tag=i)
                    times.append(ctx.world.engine.now - t0)

        world.run(body)
        assert times[1] < times[0]


class TestMatchTimeValidation:
    """Regression: envelope mismatches are rejected when the message
    matches a posted receive, with an error naming both endpoints —
    not later, deep in the data-movement path with no context."""

    def test_dtype_mismatch_same_nbytes_names_endpoints(self):
        # 2x int64 and 2x double are both 16B: the old nbytes-only check
        # let this through to a bare "dtype mismatch: int64 -> double"
        # deep inside Buffer.copy_from
        world = make_world()
        sendbuf = Buffer.real(np.arange(2, dtype=np.int64), INT64)
        recvbuf = Buffer.alloc(DOUBLE, 2)

        def body(ctx):
            if ctx.rank == 0:
                yield from ctx.send(2, sendbuf, tag=9)
            elif ctx.rank == 2:
                yield from ctx.recv(0, recvbuf, tag=9)

        with pytest.raises(Exception, match=r"0->2.*tag=9") as ei:
            world.run(body)
        msg = str(ei.value)
        assert "int64" in msg and "double" in msg

    def test_size_mismatch_names_endpoints(self):
        world = make_world()
        sendbuf = Buffer.alloc(BYTE, 8)
        recvbuf = Buffer.alloc(BYTE, 16)

        def body(ctx):
            if ctx.rank == 0:
                yield from ctx.send(2, sendbuf, tag=7)
            elif ctx.rank == 2:
                yield from ctx.recv(0, recvbuf, tag=7)

        with pytest.raises(Exception, match=r"0->2.*tag=7"):
            world.run(body)

    def test_real_phantom_mix_detected_at_match(self):
        world = make_world()
        sendbuf = Buffer.real(np.zeros(8, dtype=np.uint8))
        recvbuf = Buffer.phantom(8)

        def body(ctx):
            if ctx.rank == 0:
                yield from ctx.send(2, sendbuf, tag=0)
            elif ctx.rank == 2:
                yield from ctx.recv(0, recvbuf, tag=0)

        with pytest.raises(Exception, match=r"real.*phantom|phantom.*real"):
            world.run(body)


class TestZeroByteMessages:
    """Zero-count messages must deliver (empty payload, completed
    requests) and still charge the latency path, like a real NIC."""

    def test_internode_eager_zero_bytes_full_latency(self):
        world = make_world()
        p = world.params
        data, elapsed = exchange(world, 0, 2, 0)
        assert data.size == 0
        expected = (
            p.send_overhead
            + 1.0 / p.proc_msg_rate
            + p.wire_latency
            + p.recv_overhead
        )
        assert elapsed == pytest.approx(expected, rel=1e-9)

    def test_zero_bytes_stays_eager_in_rendezvous_regime(self):
        # 0B is never above the threshold, so no RTS/CTS round trip
        world = make_world(eager_threshold=0)
        p = world.params
        data, elapsed = exchange(world, 0, 2, 0)
        assert data.size == 0
        eager_latency = (
            p.send_overhead
            + 1.0 / p.proc_msg_rate
            + p.wire_latency
            + p.recv_overhead
        )
        # exactly one trip: a rendezvous would add an RTS/CTS round trip
        assert elapsed == pytest.approx(eager_latency, rel=1e-9)

    @pytest.mark.parametrize(
        "mech_factory", [PosixShmem, KernelCopy, Xpmem, PipShmem]
    )
    def test_intranode_zero_bytes(self, mech_factory):
        world = make_world(mechanism=mech_factory(), validate=True)
        data, elapsed = exchange(world, 0, 1, 0)
        assert data.size == 0
        assert elapsed > 0  # per-message costs are still charged

    def test_zero_byte_non_overtaking_with_data_siblings(self):
        """A 0B message between two data messages keeps FIFO order."""
        world = make_world(validate=True)
        sizes = [8, 0, 8]
        sends = [Buffer.real(np.full(n, i, dtype=np.uint8))
                 for i, n in enumerate(sizes)]
        recvs = [Buffer.alloc(BYTE, n) for n in sizes]

        def body(ctx):
            if ctx.rank == 0:
                for b in sends:
                    yield from ctx.send(2, b, tag=3)
            elif ctx.rank == 2:
                for r in recvs:
                    yield from ctx.recv(0, r, tag=3)

        world.run(body)
        assert np.all(recvs[0].array() == 0)
        assert recvs[1].array().size == 0
        assert np.all(recvs[2].array() == 2)


class TestUnexpectedBounce:
    def test_bounce_preserves_payload_against_sender_reuse(self):
        """An unexpected eager message must hold its bounce-buffer copy
        even if the sender rewrites its buffer before the recv posts."""
        world = make_world()
        sendbuf = Buffer.real(np.full(64, 5, dtype=np.uint8))
        recvbuf = Buffer.alloc(BYTE, 64)

        def body(ctx):
            if ctx.rank == 0:
                yield from ctx.send(2, sendbuf, tag=0)
                sendbuf.fill(99)  # after local completion: legal reuse
            elif ctx.rank == 2:
                yield from ctx.compute(1e-2)  # message waits unexpected
                yield from ctx.recv(0, recvbuf, tag=0)

        world.run(body)
        assert np.all(recvbuf.array() == 5)

    def test_unexpected_queue_drains_fifo(self):
        world = make_world(validate=True)
        sends = [Buffer.real(np.full(16, i, dtype=np.uint8))
                 for i in range(3)]
        recvs = [Buffer.alloc(BYTE, 16) for _ in range(3)]

        def body(ctx):
            if ctx.rank == 0:
                for b in sends:
                    yield from ctx.send(2, b, tag=4)
            elif ctx.rank == 2:
                yield from ctx.compute(1e-2)  # all three arrive unexpected
                for r in recvs:
                    yield from ctx.recv(0, r, tag=4)

        world.run(body)
        for i, r in enumerate(recvs):
            assert np.all(r.array() == i)


class TestRendezvousCapture:
    def test_payload_captured_before_sender_reuses(self):
        """Rendezvous payload is captured at match time, so a sender
        rewriting its buffer after `send` returns cannot corrupt the
        still-streaming transfer."""
        world = make_world()
        nbytes = world.params.eager_threshold * 2
        sendbuf = Buffer.real(np.full(nbytes, 1, dtype=np.uint8))
        recvbuf = Buffer.alloc(BYTE, nbytes)

        def body(ctx):
            if ctx.rank == 0:
                yield from ctx.send(2, sendbuf, tag=0)
                sendbuf.fill(99)  # send completed locally: legal reuse
            elif ctx.rank == 2:
                yield from ctx.compute(1e-3)
                yield from ctx.recv(0, recvbuf, tag=0)

        world.run(body)
        assert np.all(recvbuf.array() == 1)


class TestValidationMode:
    """The validate=True semantics oracles (repro.mpi.validation)."""

    def test_eager_reuse_before_completion_detected(self):
        world = make_world(validate=True)
        sendbuf = Buffer.real(np.full(64, 1, dtype=np.uint8))
        recvbuf = Buffer.alloc(BYTE, 64)

        def body(ctx):
            if ctx.rank == 0:
                req = yield from ctx.isend(2, sendbuf, tag=0)
                sendbuf.fill(99)  # BEFORE waiting: illegal reuse
                yield from ctx.wait(req)
            elif ctx.rank == 2:
                yield from ctx.recv(0, recvbuf, tag=0)

        with pytest.raises(ValidationError, match="reused its send buffer"):
            world.run(body)

    def test_rendezvous_reuse_before_completion_detected(self):
        world = make_world(validate=True)
        nbytes = world.params.eager_threshold * 2
        sendbuf = Buffer.real(np.full(nbytes, 1, dtype=np.uint8))
        recvbuf = Buffer.alloc(BYTE, nbytes)

        def body(ctx):
            if ctx.rank == 0:
                req = yield from ctx.isend(2, sendbuf, tag=0)
                sendbuf.fill(99)
                yield from ctx.wait(req)
            elif ctx.rank == 2:
                yield from ctx.compute(1e-3)
                yield from ctx.recv(0, recvbuf, tag=0)

        with pytest.raises(ValidationError):
            world.run(body)

    def test_clean_program_passes_and_counts(self):
        world = make_world(validate=True)
        data, _ = exchange(world, 0, 2, 256)
        assert np.all(data == 7)
        v = world.validator
        assert v is not None
        assert v.sends_validated >= 1
        assert v.matches_checked >= 1

    def test_quiescence_catches_unmatched_recv(self):
        world = make_world(validate=True)
        recvbuf = Buffer.alloc(BYTE, 8)

        def body(ctx):
            if ctx.rank == 2:
                ctx.irecv(0, recvbuf, tag=0)  # never matched
            return
            yield  # pragma: no cover

        with pytest.raises(ValidationError, match="quiesc|unmatched|posted"):
            world.run(body)


class TestPhantomMode:
    def test_phantom_world_times_match_real(self):
        """Identical timing in real and phantom data modes."""

        def run(phantom):
            params = tiny_test_machine()
            world = World(Topology(2, 2), params, mechanism=PosixShmem(),
                          phantom=phantom)
            sendbuf = (
                Buffer.phantom(512) if phantom
                else Buffer.real(np.zeros(512, dtype=np.uint8))
            )
            recvbuf = Buffer.phantom(512) if phantom else Buffer.alloc(BYTE, 512)

            def body(ctx):
                if ctx.rank == 0:
                    yield from ctx.send(3, sendbuf, tag=0)
                elif ctx.rank == 3:
                    yield from ctx.recv(0, recvbuf, tag=0)

            return world.run(body).elapsed

        assert run(True) == pytest.approx(run(False))

"""Tests for p2p transport: matching, eager/rendezvous, intranode mechanisms."""

import numpy as np
import pytest

from repro.hw import Topology, tiny_test_machine
from repro.mpi import BYTE, Buffer, World
from repro.shmem import KernelCopy, PipShmem, PosixShmem, Xpmem


def make_world(nodes=2, ppn=2, mechanism=None, **overrides):
    params = tiny_test_machine()
    if overrides:
        params = params.with_overrides(**overrides)
    return World(Topology(nodes, ppn), params, mechanism=mechanism or PosixShmem())


def exchange(world, src, dst, nbytes, fill=7):
    """Send nbytes from src to dst; return (recv_array, elapsed)."""
    sendbuf = Buffer.real(np.full(nbytes, fill, dtype=np.uint8))
    recvbuf = Buffer.alloc(BYTE, nbytes)

    def body(ctx):
        if ctx.rank == src:
            yield from ctx.send(dst, sendbuf, tag=1)
        elif ctx.rank == dst:
            yield from ctx.recv(src, recvbuf, tag=1)
        else:
            return
            yield  # pragma: no cover

    result = world.run(body)
    return recvbuf.array(), result.elapsed


class TestInternodeEager:
    def test_data_arrives(self):
        world = make_world()
        data, elapsed = exchange(world, 0, 2, 64)
        assert np.all(data == 7)
        assert elapsed > 0

    def test_latency_composition(self):
        world = make_world()
        p = world.params
        _, elapsed = exchange(world, 0, 2, 16)
        # send_overhead + injection gap (the slowest pipeline stage for a
        # tiny message) + wire latency + recv_overhead
        expected = (
            p.send_overhead
            + 1.0 / p.proc_msg_rate
            + p.wire_latency
            + p.recv_overhead
        )
        assert elapsed == pytest.approx(expected, rel=1e-9)

    def test_unexpected_message_costs_extra_copy(self):
        """Receiver posting late pays the bounce-buffer copy."""
        world = make_world()
        p = world.params
        nbytes = 4096
        sendbuf = Buffer.real(np.full(nbytes, 3, dtype=np.uint8))
        recvbuf = Buffer.alloc(BYTE, nbytes)
        late = 1e-3  # recv posted long after arrival

        def body(ctx):
            if ctx.rank == 0:
                yield from ctx.send(2, sendbuf, tag=0)
            elif ctx.rank == 2:
                yield from ctx.compute(late)
                yield from ctx.recv(0, recvbuf, tag=0)

        res = world.run(body)
        assert np.all(recvbuf.array() == 3)
        # must include the unexpected-queue copy-out after `late`
        assert res.elapsed >= late + nbytes / p.core_copy_bw

    def test_sender_may_reuse_buffer_after_send(self):
        """Eager snapshot: mutating the send buffer after completion is safe."""
        world = make_world()
        nbytes = 32
        sendbuf = Buffer.real(np.full(nbytes, 1, dtype=np.uint8))
        recvbuf = Buffer.alloc(BYTE, nbytes)

        def body(ctx):
            if ctx.rank == 0:
                yield from ctx.send(2, sendbuf, tag=0)
                sendbuf.fill(99)  # reuse immediately
            elif ctx.rank == 2:
                yield from ctx.compute(1e-3)  # receive long after the overwrite
                yield from ctx.recv(0, recvbuf, tag=0)

        world.run(body)
        assert np.all(recvbuf.array() == 1)


class TestInternodeRendezvous:
    def test_large_message_uses_rendezvous_and_arrives(self):
        world = make_world()
        nbytes = world.params.eager_threshold + 1024
        data, elapsed = exchange(world, 0, 2, nbytes)
        assert np.all(data == 7)
        p = world.params
        # must include at least one extra round trip vs pure streaming
        assert elapsed > nbytes / p.nic_bandwidth + 2 * p.wire_latency

    def test_rendezvous_blocks_sender_until_receiver_posts(self):
        world = make_world()
        nbytes = world.params.eager_threshold * 2
        sendbuf = Buffer.real(np.zeros(nbytes, dtype=np.uint8))
        recvbuf = Buffer.alloc(BYTE, nbytes)
        send_done_at = [0.0]
        delay = 5e-3

        def body(ctx):
            if ctx.rank == 0:
                yield from ctx.send(2, sendbuf, tag=0)
                send_done_at[0] = ctx.world.engine.now
            elif ctx.rank == 2:
                yield from ctx.compute(delay)
                yield from ctx.recv(0, recvbuf, tag=0)

        world.run(body)
        assert send_done_at[0] >= delay


class TestMatching:
    def test_tags_disambiguate(self):
        world = make_world()
        b1 = Buffer.real(np.full(8, 1, dtype=np.uint8))
        b2 = Buffer.real(np.full(8, 2, dtype=np.uint8))
        r1 = Buffer.alloc(BYTE, 8)
        r2 = Buffer.alloc(BYTE, 8)

        def body(ctx):
            if ctx.rank == 0:
                yield from ctx.send(2, b1, tag=10)
                yield from ctx.send(2, b2, tag=20)
            elif ctx.rank == 2:
                # receive in reverse tag order
                yield from ctx.recv(0, r2, tag=20)
                yield from ctx.recv(0, r1, tag=10)

        world.run(body)
        assert np.all(r1.array() == 1)
        assert np.all(r2.array() == 2)

    def test_same_tag_non_overtaking(self):
        world = make_world()
        bufs = [Buffer.real(np.full(8, i, dtype=np.uint8)) for i in range(3)]
        recvs = [Buffer.alloc(BYTE, 8) for _ in range(3)]

        def body(ctx):
            if ctx.rank == 0:
                for b in bufs:
                    yield from ctx.send(2, b, tag=5)
            elif ctx.rank == 2:
                for r in recvs:
                    yield from ctx.recv(0, r, tag=5)

        world.run(body)
        for i, r in enumerate(recvs):
            assert np.all(r.array() == i)

    def test_size_mismatch_raises(self):
        world = make_world()
        sendbuf = Buffer.alloc(BYTE, 8)
        recvbuf = Buffer.alloc(BYTE, 16)

        def body(ctx):
            if ctx.rank == 0:
                yield from ctx.send(2, sendbuf, tag=0)
            elif ctx.rank == 2:
                yield from ctx.recv(0, recvbuf, tag=0)

        with pytest.raises(Exception, match="16B.*8B|8B.*16B"):
            world.run(body)

    def test_sendrecv_bidirectional_no_deadlock(self):
        world = make_world(mechanism=PipShmem())  # non-eager mechanism
        a = Buffer.real(np.full(8, 1, dtype=np.uint8))
        b = Buffer.real(np.full(8, 2, dtype=np.uint8))
        ra = Buffer.alloc(BYTE, 8)
        rb = Buffer.alloc(BYTE, 8)

        def body(ctx):
            if ctx.rank == 0:
                yield from ctx.sendrecv(1, a, 1, ra, tag=0)
            elif ctx.rank == 1:
                yield from ctx.sendrecv(0, b, 0, rb, tag=0)

        world.run(body)
        assert np.all(ra.array() == 2)
        assert np.all(rb.array() == 1)


class TestIntranodeMechanisms:
    @pytest.mark.parametrize(
        "mech_factory", [PosixShmem, KernelCopy, Xpmem, PipShmem]
    )
    def test_data_arrives(self, mech_factory):
        world = make_world(mechanism=mech_factory())
        data, elapsed = exchange(world, 0, 1, 256)
        assert np.all(data == 7)
        assert elapsed > 0

    def test_posix_is_eager(self):
        """POSIX sender completes without the receiver posting."""
        world = make_world(mechanism=PosixShmem())
        sendbuf = Buffer.alloc(BYTE, 64)
        recvbuf = Buffer.alloc(BYTE, 64)
        send_done = [0.0]
        delay = 1e-2

        def body(ctx):
            if ctx.rank == 0:
                yield from ctx.send(1, sendbuf, tag=0)
                send_done[0] = ctx.world.engine.now
            elif ctx.rank == 1:
                yield from ctx.compute(delay)
                yield from ctx.recv(0, recvbuf, tag=0)

        world.run(body)
        assert send_done[0] < delay

    def test_kernel_copy_blocks_sender_until_receiver(self):
        world = make_world(mechanism=KernelCopy())
        sendbuf = Buffer.alloc(BYTE, 64)
        recvbuf = Buffer.alloc(BYTE, 64)
        send_done = [0.0]
        delay = 1e-2

        def body(ctx):
            if ctx.rank == 0:
                yield from ctx.send(1, sendbuf, tag=0)
                send_done[0] = ctx.world.engine.now
            elif ctx.rank == 1:
                yield from ctx.compute(delay)
                yield from ctx.recv(0, recvbuf, tag=0)

        world.run(body)
        assert send_done[0] >= delay

    def test_posix_double_copy_slower_than_pip_for_large(self):
        nbytes = 1 << 20
        _, t_posix = exchange(make_world(mechanism=PosixShmem()), 0, 1, nbytes)
        _, t_pip = exchange(make_world(mechanism=PipShmem()), 0, 1, nbytes)
        assert t_pip < t_posix

    def test_pip_sizesync_hurts_small_messages(self):
        _, t_posix = exchange(make_world(mechanism=PosixShmem()), 0, 1, 16)
        _, t_pip = exchange(make_world(mechanism=PipShmem()), 0, 1, 16)
        assert t_posix < t_pip

    def test_kernel_copy_pays_syscall_and_faults_once(self):
        world = make_world(mechanism=KernelCopy())
        p = world.params
        nbytes = 4 * p.page_size
        sendbuf = Buffer.alloc(BYTE, nbytes)
        recvbuf = Buffer.alloc(BYTE, nbytes)
        times = []

        def body(ctx):
            for i in range(2):
                t0 = ctx.world.engine.now
                if ctx.rank == 0:
                    yield from ctx.send(1, sendbuf, tag=i)
                elif ctx.rank == 1:
                    yield from ctx.recv(0, recvbuf, tag=i)
                    times.append(ctx.world.engine.now - t0)

        world.run(body)
        # second transfer reuses warm pages: strictly cheaper
        assert times[1] < times[0]
        assert times[0] - times[1] == pytest.approx(4 * p.page_fault_time, rel=1e-6)

    def test_xpmem_attach_cached_after_first_use(self):
        world = make_world(mechanism=Xpmem())
        p = world.params
        sendbuf = Buffer.alloc(BYTE, 64)
        recvbuf = Buffer.alloc(BYTE, 64)
        times = []

        def body(ctx):
            for i in range(2):
                t0 = ctx.world.engine.now
                if ctx.rank == 0:
                    yield from ctx.send(1, sendbuf, tag=i)
                elif ctx.rank == 1:
                    yield from ctx.recv(0, recvbuf, tag=i)
                    times.append(ctx.world.engine.now - t0)

        world.run(body)
        assert times[1] < times[0]


class TestPhantomMode:
    def test_phantom_world_times_match_real(self):
        """Identical timing in real and phantom data modes."""

        def run(phantom):
            params = tiny_test_machine()
            world = World(Topology(2, 2), params, mechanism=PosixShmem(),
                          phantom=phantom)
            sendbuf = (
                Buffer.phantom(512) if phantom
                else Buffer.real(np.zeros(512, dtype=np.uint8))
            )
            recvbuf = Buffer.phantom(512) if phantom else Buffer.alloc(BYTE, 512)

            def body(ctx):
                if ctx.rank == 0:
                    yield from ctx.send(3, sendbuf, tag=0)
                elif ctx.rank == 3:
                    yield from ctx.recv(0, recvbuf, tag=0)

            return world.run(body).elapsed

        assert run(True) == pytest.approx(run(False))

"""Correctness of the classical collective algorithms vs numpy ground truth."""

import numpy as np
import pytest

from repro.mpi import DOUBLE, MAX, SUM, Buffer
from repro.mpi.collectives import (
    allgather_bruck,
    allgather_recursive_doubling,
    allgather_ring,
    allreduce_rabenseifner,
    allreduce_recursive_doubling,
    barrier_dissemination,
    bcast_binomial,
    block_partition,
    gather_binomial,
    reduce_binomial,
    scatter_binomial,
)

from tests.helpers import (
    alloc_outputs,
    gathered_matrix,
    make_world,
    rank_inputs,
    world_group,
)

# group sizes exercising powers of two, odd sizes, and primes
SHAPES = [(1, 1), (1, 3), (2, 2), (3, 1), (2, 3), (5, 1), (3, 3), (4, 4), (7, 2)]


def shape_id(shape):
    return f"{shape[0]}x{shape[1]}"


class TestBcast:
    @pytest.mark.parametrize("shape", SHAPES, ids=shape_id)
    @pytest.mark.parametrize("root", [0, "last"])
    def test_all_ranks_get_root_data(self, shape, root):
        world = make_world(*shape)
        group = world_group(world)
        root_index = group.size - 1 if root == "last" else 0
        payload = np.arange(17, dtype=np.float64)
        bufs = [
            Buffer.real(payload.copy()) if r == root_index else Buffer.alloc(DOUBLE, 17)
            for r in range(world.world_size)
        ]

        def body(ctx):
            yield from bcast_binomial(ctx, group, bufs[ctx.rank], root_index)

        world.run(body)
        for buf in bufs:
            assert np.array_equal(buf.array(), payload)


class TestScatter:
    @pytest.mark.parametrize("shape", SHAPES, ids=shape_id)
    @pytest.mark.parametrize("root", [0, "mid"])
    @pytest.mark.parametrize("count", [1, 4])
    def test_each_rank_gets_its_block(self, shape, root, count):
        world = make_world(*shape)
        group = world_group(world)
        size = group.size
        root_index = size // 2 if root == "mid" else 0
        full = np.arange(size * count, dtype=np.float64)
        sendbuf = Buffer.real(full.copy())
        recvs = alloc_outputs(world, count)

        def body(ctx):
            sb = sendbuf if ctx.rank == group.rank_at(root_index) else None
            yield from scatter_binomial(ctx, group, sb, recvs[ctx.rank], root_index)

        world.run(body)
        for i, r in enumerate(recvs):
            assert np.array_equal(r.array(), full[i * count : (i + 1) * count]), i


class TestGather:
    @pytest.mark.parametrize("shape", SHAPES, ids=shape_id)
    @pytest.mark.parametrize("root", [0, "last"])
    def test_root_collects_in_rank_order(self, shape, root):
        world = make_world(*shape)
        group = world_group(world)
        root_index = group.size - 1 if root == "last" else 0
        count = 3
        inputs = rank_inputs(world, count)
        recvbuf = Buffer.alloc(DOUBLE, group.size * count)

        def body(ctx):
            rb = recvbuf if ctx.rank == group.rank_at(root_index) else None
            yield from gather_binomial(ctx, group, inputs[ctx.rank], rb, root_index)

        world.run(body)
        assert np.array_equal(recvbuf.array(), gathered_matrix(inputs))


class TestReduce:
    @pytest.mark.parametrize("shape", SHAPES, ids=shape_id)
    @pytest.mark.parametrize("op,npop", [(SUM, np.sum), (MAX, np.max)])
    def test_root_gets_elementwise_reduction(self, shape, op, npop):
        world = make_world(*shape)
        group = world_group(world)
        count = 5
        inputs = rank_inputs(world, count)
        recvbuf = Buffer.alloc(DOUBLE, count)

        def body(ctx):
            rb = recvbuf if ctx.rank == 0 else None
            yield from reduce_binomial(ctx, group, inputs[ctx.rank], rb, op)

        world.run(body)
        expected = npop([b.array() for b in inputs], axis=0)
        np.testing.assert_allclose(recvbuf.array(), expected, rtol=1e-12)

    def test_nonzero_root(self):
        world = make_world(3, 2)
        group = world_group(world)
        inputs = rank_inputs(world, 4)
        recvbuf = Buffer.alloc(DOUBLE, 4)
        root_index = 4

        def body(ctx):
            rb = recvbuf if ctx.rank == group.rank_at(root_index) else None
            yield from reduce_binomial(ctx, group, inputs[ctx.rank], rb, SUM, root_index)

        world.run(body)
        expected = np.sum([b.array() for b in inputs], axis=0)
        np.testing.assert_allclose(recvbuf.array(), expected, rtol=1e-12)


ALLGATHERS = [
    allgather_bruck,
    allgather_ring,
    allgather_recursive_doubling,
]


class TestAllgather:
    @pytest.mark.parametrize("shape", SHAPES, ids=shape_id)
    @pytest.mark.parametrize("algo", ALLGATHERS, ids=lambda a: a.__name__)
    def test_everyone_gets_everything(self, shape, algo):
        world = make_world(*shape)
        group = world_group(world)
        if algo is allgather_recursive_doubling and group.size & (group.size - 1):
            pytest.skip("recursive doubling needs power-of-two sizes")
        count = 2
        inputs = rank_inputs(world, count)
        outputs = [Buffer.alloc(DOUBLE, group.size * count) for _ in group.ranks]
        expected = gathered_matrix(inputs)

        def body(ctx):
            yield from algo(ctx, group, inputs[ctx.rank], outputs[ctx.rank])

        world.run(body)
        for rank, out in enumerate(outputs):
            assert np.array_equal(out.array(), expected), f"rank {rank}"

    def test_recursive_doubling_rejects_non_pow2(self):
        world = make_world(3, 1)
        group = world_group(world)
        inputs = rank_inputs(world, 1)
        outputs = [Buffer.alloc(DOUBLE, 3) for _ in range(3)]

        def body(ctx):
            yield from allgather_recursive_doubling(
                ctx, group, inputs[ctx.rank], outputs[ctx.rank]
            )

        with pytest.raises(ValueError, match="power-of-two"):
            world.run(body)

    def test_recvbuf_size_validated(self):
        world = make_world(2, 1)
        group = world_group(world)
        inputs = rank_inputs(world, 4)
        bad = [Buffer.alloc(DOUBLE, 4) for _ in range(2)]  # needs 8

        def body(ctx):
            yield from allgather_bruck(ctx, group, inputs[ctx.rank], bad[ctx.rank])

        with pytest.raises(ValueError, match="elements"):
            world.run(body)


ALLREDUCES = [allreduce_recursive_doubling, allreduce_rabenseifner]


class TestAllreduce:
    @pytest.mark.parametrize("shape", SHAPES, ids=shape_id)
    @pytest.mark.parametrize("algo", ALLREDUCES, ids=lambda a: a.__name__)
    @pytest.mark.parametrize("count", [1, 4, 16])
    def test_everyone_gets_global_sum(self, shape, algo, count):
        world = make_world(*shape)
        group = world_group(world)
        inputs = rank_inputs(world, count)
        outputs = alloc_outputs(world, count)
        expected = np.sum([b.array() for b in inputs], axis=0)

        def body(ctx):
            yield from algo(ctx, group, inputs[ctx.rank], outputs[ctx.rank], SUM)

        world.run(body)
        for rank, out in enumerate(outputs):
            np.testing.assert_allclose(
                out.array(), expected, rtol=1e-12, err_msg=f"rank {rank}"
            )

    @pytest.mark.parametrize("algo", ALLREDUCES, ids=lambda a: a.__name__)
    def test_max_reduction(self, algo):
        world = make_world(3, 2)
        group = world_group(world)
        inputs = rank_inputs(world, 7)
        outputs = alloc_outputs(world, 7)
        expected = np.max([b.array() for b in inputs], axis=0)

        def body(ctx):
            yield from algo(ctx, group, inputs[ctx.rank], outputs[ctx.rank], MAX)

        world.run(body)
        for out in outputs:
            np.testing.assert_allclose(out.array(), expected, rtol=1e-12)

    def test_rabenseifner_more_blocks_than_elements(self):
        """pof2 > count: some blocks are empty; still correct."""
        world = make_world(8, 1)
        group = world_group(world)
        inputs = rank_inputs(world, 3)  # 3 elements, 8 blocks
        outputs = alloc_outputs(world, 3)
        expected = np.sum([b.array() for b in inputs], axis=0)

        def body(ctx):
            yield from allreduce_rabenseifner(
                ctx, group, inputs[ctx.rank], outputs[ctx.rank], SUM
            )

        world.run(body)
        for out in outputs:
            np.testing.assert_allclose(out.array(), expected, rtol=1e-12)


class TestBarrier:
    @pytest.mark.parametrize("shape", [(1, 1), (2, 3), (5, 1), (4, 4)], ids=shape_id)
    def test_no_rank_exits_before_last_enters(self, shape):
        world = make_world(*shape)
        group = world_group(world)
        enter = {}
        exit_ = {}

        def body(ctx):
            # stagger arrivals
            yield from ctx.compute(ctx.rank * 1e-4)
            enter[ctx.rank] = world.engine.now
            yield from barrier_dissemination(ctx, group)
            exit_[ctx.rank] = world.engine.now

        world.run(body)
        assert min(exit_.values()) >= max(enter.values())


class TestBlockPartition:
    def test_even_split(self):
        assert block_partition(8, 4) == ((2, 2, 2, 2), (0, 2, 4, 6))

    def test_uneven_split_puts_extra_first(self):
        counts, displs = block_partition(10, 4)
        assert counts == (3, 3, 2, 2)
        assert displs == (0, 3, 6, 8)

    def test_more_parts_than_elements(self):
        counts, displs = block_partition(2, 5)
        assert counts == (1, 1, 0, 0, 0)
        assert sum(counts) == 2

    def test_zero_count(self):
        counts, _ = block_partition(0, 3)
        assert counts == (0, 0, 0)

    def test_invalid(self):
        with pytest.raises(ValueError):
            block_partition(5, 0)
        with pytest.raises(ValueError):
            block_partition(-1, 2)

"""Correctness of the vector (v-) collectives with irregular layouts."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.mpi import DOUBLE, Buffer
from repro.mpi.collectives.vector import (
    allgatherv_ring,
    gatherv_linear,
    scatterv_linear,
)

from tests.helpers import make_world, world_group


def layout(counts):
    displs = []
    acc = 0
    for c in counts:
        displs.append(acc)
        acc += c
    return list(counts), displs, acc


class TestScatterv:
    @pytest.mark.parametrize(
        "counts", [[3, 1, 4, 2], [0, 5, 0, 2], [1, 1, 1, 1], [7, 0, 0, 0]]
    )
    def test_irregular_blocks(self, counts):
        world = make_world(2, 2)
        group = world_group(world)
        counts, displs, total = layout(counts)
        full = np.arange(total, dtype=np.float64)
        sendbuf = Buffer.real(full.copy())
        recvs = [Buffer.alloc(DOUBLE, counts[r]) for r in range(4)]

        def body(ctx):
            sb = sendbuf if ctx.rank == 0 else None
            yield from scatterv_linear(
                ctx, group, sb, counts, displs, recvs[ctx.rank]
            )

        world.run(body)
        for i, r in enumerate(recvs):
            assert np.array_equal(
                r.array(), full[displs[i]:displs[i] + counts[i]]
            ), i

    def test_nonzero_root_and_overlapping_displs(self):
        """displs need not be contiguous — ranks may receive overlapping
        or gapped slices of the root buffer."""
        world = make_world(3, 1)
        group = world_group(world)
        counts = [2, 2, 2]
        displs = [0, 1, 4]  # overlapping + gapped
        full = np.arange(8, dtype=np.float64)
        sendbuf = Buffer.real(full.copy())
        recvs = [Buffer.alloc(DOUBLE, 2) for _ in range(3)]

        def body(ctx):
            sb = sendbuf if ctx.rank == 1 else None
            yield from scatterv_linear(
                ctx, group, sb, counts, displs, recvs[ctx.rank], root_index=1
            )

        world.run(body)
        for i in range(3):
            assert np.array_equal(
                recvs[i].array(), full[displs[i]:displs[i] + 2]
            )

    def test_layout_validation(self):
        world = make_world(2, 1)
        group = world_group(world)
        buf = Buffer.alloc(DOUBLE, 2)

        def body(ctx):
            yield from scatterv_linear(
                ctx, group, None, [1], [0], buf
            )

        with pytest.raises(ValueError, match="one entry per rank"):
            world.run(body)


class TestGatherv:
    @pytest.mark.parametrize("counts", [[2, 3, 0, 1], [4, 4, 4, 4]])
    def test_irregular_blocks(self, counts):
        world = make_world(2, 2)
        group = world_group(world)
        counts, displs, total = layout(counts)
        rng = np.random.default_rng(0)
        inputs = [Buffer.real(rng.random(c)) for c in counts]
        recvbuf = Buffer.alloc(DOUBLE, total)

        def body(ctx):
            rb = recvbuf if ctx.rank == 0 else None
            yield from gatherv_linear(
                ctx, group, inputs[ctx.rank], counts, displs, rb
            )

        world.run(body)
        expected = np.concatenate(
            [b.array() for b in inputs if b.count]
        ) if total else np.array([])
        assert np.array_equal(recvbuf.array(), expected)

    def test_sendbuf_count_must_match(self):
        world = make_world(2, 1)
        group = world_group(world)
        wrong = Buffer.alloc(DOUBLE, 3)
        recvbuf = Buffer.alloc(DOUBLE, 4)

        def body(ctx):
            rb = recvbuf if ctx.rank == 0 else None
            yield from gatherv_linear(ctx, group, wrong, [2, 2], [0, 2], rb)

        with pytest.raises(ValueError, match="my count"):
            world.run(body)


class TestAllgatherv:
    @pytest.mark.parametrize(
        "counts", [[1, 3, 2, 4], [0, 2, 0, 2], [5, 5, 5, 5]]
    )
    def test_everyone_gets_the_layout(self, counts):
        world = make_world(4, 1)
        group = world_group(world)
        counts, displs, total = layout(counts)
        rng = np.random.default_rng(1)
        inputs = [Buffer.real(rng.random(c)) for c in counts]
        outputs = [Buffer.alloc(DOUBLE, total) for _ in range(4)]
        expected = np.concatenate(
            [b.array() for b in inputs if b.count]
        ) if total else np.array([])

        def body(ctx):
            yield from allgatherv_ring(
                ctx, group, inputs[ctx.rank], counts, displs, outputs[ctx.rank]
            )

        world.run(body)
        for out in outputs:
            assert np.array_equal(out.array(), expected)

    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        counts=st.lists(st.integers(0, 8), min_size=2, max_size=8),
        seed=st.integers(0, 10**6),
    )
    def test_property_random_layouts(self, counts, seed):
        size = len(counts)
        world = make_world(size, 1)
        group = world_group(world)
        counts, displs, total = layout(counts)
        rng = np.random.default_rng(seed)
        inputs = [Buffer.real(rng.random(c)) for c in counts]
        outputs = [Buffer.alloc(DOUBLE, max(total, 1)) for _ in range(size)]

        def body(ctx):
            yield from allgatherv_ring(
                ctx, group, inputs[ctx.rank], counts, displs, outputs[ctx.rank]
            )

        world.run(body)
        for out in outputs:
            for i in range(size):
                assert np.array_equal(
                    out.array()[displs[i]:displs[i] + counts[i]],
                    inputs[i].array(),
                )

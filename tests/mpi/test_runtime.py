"""Tests for the World/RankCtx runtime layer."""

import numpy as np
import pytest

from repro.hw import Topology, tiny_test_machine
from repro.mpi import BYTE, DOUBLE, SUM, Buffer, World
from repro.mpi.collectives import Group
from repro.shmem import PipShmem, PosixShmem


def make_world(nodes=2, ppn=3, phantom=False):
    return World(
        Topology(nodes, ppn), tiny_test_machine(), mechanism=PosixShmem(),
        phantom=phantom,
    )


class TestRankCtx:
    def test_identity_fields(self):
        world = make_world(3, 4)
        ctx = world.ctx(7)
        assert ctx.rank == 7
        assert ctx.node == 1
        assert ctx.local_rank == 3
        assert ctx.world_size == 12
        assert ctx.nodes == 3
        assert ctx.ppn == 4
        assert not ctx.is_local_root()
        assert ctx.local_root_rank() == 4
        assert world.ctx(4).is_local_root()

    def test_rank_helpers(self):
        world = make_world(2, 2)
        ctx = world.ctx(0)
        assert ctx.rank_of(1, 1) == 3
        assert ctx.node_of(3) == 1

    def test_alloc_respects_data_mode(self):
        real = make_world().ctx(0).alloc(DOUBLE, 4)
        assert real.is_real
        phantom = make_world(phantom=True).ctx(0).alloc(DOUBLE, 4)
        assert not phantom.is_real
        assert phantom.nbytes == 32

    def test_alloc_bytes(self):
        buf = make_world().ctx(0).alloc_bytes(100)
        assert buf.dtype is BYTE
        assert buf.nbytes == 100

    def test_op_seq_increments(self):
        ctx = make_world().ctx(0)
        assert ctx.next_op_seq() < ctx.next_op_seq()

    def test_collective_tag_group_scoped(self):
        world = make_world(2, 2)
        ctx = world.ctx(0)
        g1 = Group([0, 1])
        g2 = Group([0, 2])
        t1a = ctx.collective_tag(g1)
        t2 = ctx.collective_tag(g2)
        t1b = ctx.collective_tag(g1)
        # per-group counters advance independently
        assert t1a[1] == 1 and t1b[1] == 2 and t2[1] == 1
        assert t1a[0] == t1b[0] != t2[0]

    def test_compute_advances_time(self):
        world = make_world()

        def body(ctx):
            if ctx.rank == 0:
                yield from ctx.compute(1e-3)
            else:
                return
                yield  # pragma: no cover

        assert world.run(body).elapsed == pytest.approx(1e-3)

    def test_copy_and_reduce_into_move_data_and_time(self):
        world = make_world()
        src = Buffer.real(np.array([1.0, 2.0]))
        dst = Buffer.alloc(DOUBLE, 2)

        def body(ctx):
            if ctx.rank == 0:
                yield from ctx.copy(dst, src)
                yield from ctx.reduce_into(dst, src, SUM)

        r = world.run(body)
        assert list(dst.array()) == [2.0, 4.0]
        assert r.elapsed > 0


class TestWorldRun:
    def test_elapsed_is_max_over_ranks(self):
        world = make_world(1, 3)

        def body(ctx):
            yield from ctx.compute((ctx.rank + 1) * 1e-4)

        r = world.run(body)
        assert r.elapsed == pytest.approx(3e-4)
        assert r.mean_elapsed == pytest.approx(2e-4)

    def test_back_to_back_runs_accumulate_time(self):
        world = make_world()

        def body(ctx):
            yield from ctx.compute(1e-4)

        r1 = world.run(body)
        r2 = world.run(body)
        assert r2.start >= r1.start + 1e-4
        assert r2.elapsed == pytest.approx(r1.elapsed)

    def test_run_result_end_times_per_rank(self):
        world = make_world(1, 2)

        def body(ctx):
            yield from ctx.compute(1e-4 if ctx.rank else 2e-4)

        r = world.run(body)
        assert len(r.end_times) == 2
        assert r.end_times[0] > r.end_times[1]

    def test_reset_pip_boards(self):
        world = World(
            Topology(1, 2), tiny_test_machine(), mechanism=PipShmem()
        )

        def body(ctx):
            if ctx.local_rank == 0:
                yield from ctx.pip.board.post("k", 1)
            else:
                yield from ctx.pip.board.lookup("k")

        world.run(body)
        assert world.pip_nodes[0].board._slots
        world.reset_pip_boards()
        assert not world.pip_nodes[0].board._slots

    def test_make_library_worlds_are_independent(self):
        from repro.baselines import make_library

        lib = make_library("OpenMPI")
        w1 = lib.make_world(Topology(2, 2), tiny_test_machine())
        w2 = lib.make_world(Topology(2, 2), tiny_test_machine())
        assert w1.engine is not w2.engine

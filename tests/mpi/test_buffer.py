"""Tests for real/phantom buffers."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.mpi import BYTE, DOUBLE, MAX, SUM, Buffer, BufferError


class TestConstruction:
    def test_real_wraps_without_copy(self):
        arr = np.arange(10, dtype=np.float64)
        buf = Buffer.real(arr)
        arr[0] = 99.0
        assert buf.array()[0] == 99.0
        assert buf.count == 10
        assert buf.nbytes == 80
        assert buf.is_real

    def test_alloc_zeroed(self):
        buf = Buffer.alloc(DOUBLE, 4)
        assert np.all(buf.array() == 0.0)

    def test_phantom(self):
        buf = Buffer.phantom(1024)
        assert not buf.is_real
        assert buf.nbytes == 1024
        with pytest.raises(BufferError):
            buf.array()

    def test_phantom_alignment_enforced(self):
        with pytest.raises(BufferError):
            Buffer.phantom(10, DOUBLE)

    def test_real_requires_1d(self):
        with pytest.raises(BufferError):
            Buffer.real(np.zeros((2, 2)))

    def test_unique_base_ids(self):
        a, b = Buffer.alloc(BYTE, 4), Buffer.alloc(BYTE, 4)
        assert a.base_id != b.base_id


class TestViews:
    def test_view_shares_storage(self):
        buf = Buffer.alloc(DOUBLE, 10)
        v = buf.view(2, 3)
        v.array()[:] = 7.0
        assert list(buf.array()[2:5]) == [7.0] * 3
        assert v.base_id == buf.base_id
        assert v.offset == 2

    def test_nested_views_track_offset(self):
        buf = Buffer.alloc(BYTE, 100)
        v = buf.view(10, 50).view(5, 10)
        assert v.offset == 15

    def test_view_bounds(self):
        buf = Buffer.alloc(BYTE, 10)
        with pytest.raises(BufferError):
            buf.view(5, 6)
        with pytest.raises(BufferError):
            buf.view(-1, 2)

    def test_view_bytes_alignment(self):
        buf = Buffer.alloc(DOUBLE, 10)
        v = buf.view_bytes(16, 24)
        assert v.offset == 2 and v.count == 3
        with pytest.raises(BufferError):
            buf.view_bytes(4, 8)

    def test_phantom_views(self):
        buf = Buffer.phantom(1024)
        v = buf.view_bytes(128, 256)
        assert v.nbytes == 256
        assert not v.is_real


class TestDataOps:
    def test_copy_from(self):
        src = Buffer.real(np.arange(5, dtype=np.float64))
        dst = Buffer.alloc(DOUBLE, 5)
        dst.copy_from(src)
        assert np.array_equal(dst.array(), src.array())

    def test_reduce_from_sum_and_max(self):
        a = Buffer.real(np.array([1.0, 5.0, 3.0]))
        b = Buffer.real(np.array([4.0, 2.0, 3.0]))
        acc = Buffer.alloc(DOUBLE, 3)
        acc.copy_from(a)
        acc.reduce_from(b, SUM)
        assert list(acc.array()) == [5.0, 7.0, 6.0]
        acc.copy_from(a)
        acc.reduce_from(b, MAX)
        assert list(acc.array()) == [4.0, 5.0, 3.0]

    def test_size_mismatch_rejected(self):
        with pytest.raises(BufferError):
            Buffer.alloc(BYTE, 3).copy_from(Buffer.alloc(BYTE, 4))

    def test_dtype_mismatch_rejected(self):
        with pytest.raises(BufferError):
            Buffer.alloc(DOUBLE, 4).copy_from(Buffer.alloc(BYTE, 4))

    def test_real_phantom_mix_rejected(self):
        with pytest.raises(BufferError):
            Buffer.alloc(BYTE, 4).copy_from(Buffer.phantom(4))

    def test_phantom_ops_are_noops(self):
        a, b = Buffer.phantom(64), Buffer.phantom(64)
        a.copy_from(b)
        a.reduce_from(b, SUM)
        a.fill(0)

    def test_snapshot_isolates_data(self):
        buf = Buffer.real(np.array([1.0, 2.0]))
        snap = buf.snapshot()
        buf.array()[0] = 9.0
        assert snap.array()[0] == 1.0

    def test_fill(self):
        buf = Buffer.alloc(DOUBLE, 3)
        buf.fill(2.5)
        assert list(buf.array()) == [2.5] * 3


class TestOverlappingViews:
    """Regression: overlapping-view copies must have memmove semantics.

    Before ``Buffer.overlaps`` landed, overlapping ``copy_from`` /
    ``reduce_from`` handed aliasing arrays straight to numpy, leaving
    correctness to numpy's internal overlap handling (these tests fail on
    the old code with ``AttributeError: overlaps``, and would corrupt data
    on any numpy without copy-on-overlap).
    """

    def test_overlaps_detects_same_base_ranges(self):
        base = Buffer.alloc(BYTE, 100)
        assert base.view(0, 10).overlaps(base.view(5, 10))
        assert base.view(5, 10).overlaps(base.view(0, 10))
        assert base.view(0, 10).overlaps(base.view(9, 1))
        assert not base.view(0, 10).overlaps(base.view(10, 10))
        assert not base.view(0, 10).overlaps(Buffer.alloc(BYTE, 10))

    def test_zero_count_never_overlaps(self):
        base = Buffer.alloc(BYTE, 10)
        assert not base.view(0, 0).overlaps(base.view(0, 10))
        assert not base.view(0, 10).overlaps(base.view(3, 0))

    def test_overlaps_detects_foreign_aliasing_arrays(self):
        arr = np.zeros(20, dtype=np.uint8)
        a = Buffer.real(arr[:10])
        b = Buffer.real(arr[5:15])
        assert a.overlaps(b)

    def test_forward_overlapping_copy_is_memmove(self):
        base = Buffer.real(np.arange(10, dtype=np.uint8))
        before = Buffer.staged_op_count
        base.view(2, 8).copy_from(base.view(0, 8))
        assert list(base.array()) == [0, 1, 0, 1, 2, 3, 4, 5, 6, 7]
        assert Buffer.staged_op_count == before + 1

    def test_backward_overlapping_copy_is_memmove(self):
        base = Buffer.real(np.arange(10, dtype=np.uint8))
        base.view(0, 8).copy_from(base.view(2, 8))
        assert list(base.array()) == [2, 3, 4, 5, 6, 7, 8, 9, 8, 9]

    def test_overlapping_reduce_uses_pre_op_operand(self):
        base = Buffer.real(np.arange(8, dtype=np.int32))
        before = Buffer.staged_op_count
        # dst and src share elements 2..5; src values must be the
        # pre-reduction ones for every element
        base.view(2, 4).reduce_from(base.view(0, 4), SUM)
        assert list(base.array()) == [0, 1, 2, 4, 6, 8, 6, 7]
        assert Buffer.staged_op_count == before + 1

    def test_disjoint_copy_does_not_stage(self):
        base = Buffer.alloc(BYTE, 20)
        before = Buffer.staged_op_count
        base.view(0, 10).copy_from(base.view(10, 10))
        assert Buffer.staged_op_count == before

    def test_phantom_overlap_detected_but_copy_stays_noop(self):
        buf = Buffer.phantom(64)
        a, b = buf.view_bytes(0, 32), buf.view_bytes(16, 32)
        assert a.overlaps(b)  # ranges alias even without backing data
        before = Buffer.staged_op_count
        a.copy_from(b)  # phantom: no data, nothing staged
        assert Buffer.staged_op_count == before


@given(
    count=st.integers(1, 64),
    offset_frac=st.floats(0, 1),
)
def test_view_then_copy_roundtrip(count, offset_frac):
    base = Buffer.alloc(DOUBLE, 128)
    offset = int(offset_frac * (128 - count))
    v = base.view(offset, count)
    src = Buffer.real(np.random.default_rng(0).random(count))
    v.copy_from(src)
    assert np.array_equal(base.array()[offset : offset + count], src.array())

"""Shared helpers for collective-algorithm correctness tests."""

from __future__ import annotations

import numpy as np

from repro.hw import Topology, tiny_test_machine
from repro.mpi import DOUBLE, Buffer, World
from repro.mpi.collectives import Group
from repro.shmem import PosixShmem


def make_world(nodes: int, ppn: int, mechanism=None, params=None) -> World:
    """A small real-data world for correctness tests."""
    return World(
        Topology(nodes, ppn),
        params or tiny_test_machine(),
        mechanism=mechanism or PosixShmem(),
    )


def world_group(world: World) -> Group:
    return Group(range(world.world_size))


def rank_inputs(world: World, count: int, seed: int = 0) -> list[Buffer]:
    """Deterministic distinct per-rank input buffers (doubles)."""
    rng = np.random.default_rng(seed)
    return [
        Buffer.real(np.round(rng.random(count) * 100, 3))
        for _ in range(world.world_size)
    ]


def alloc_outputs(world: World, count: int) -> list[Buffer]:
    return [Buffer.alloc(DOUBLE, count) for _ in range(world.world_size)]


def gathered_matrix(inputs: list[Buffer]) -> np.ndarray:
    """Concatenation of all rank inputs (allgather ground truth)."""
    return np.concatenate([b.array() for b in inputs])

"""Unit tests for the benchmark harness (config, protocol, runner, report)."""

import numpy as np
import pytest

from repro.bench import (
    SCALES,
    FigureResult,
    current_scale,
    format_normalized,
    format_table,
    paper_iterations,
    run_point,
)
from repro.util.units import KB


class TestScales:
    def test_presets_exist(self):
        assert set(SCALES) == {"small", "medium", "paper"}
        assert SCALES["paper"].nodes == 128
        assert SCALES["paper"].ppn == 18
        assert SCALES["paper"].world_size == 2304

    def test_env_selects_scale(self, monkeypatch):
        monkeypatch.setenv("PIPMCOLL_SCALE", "small")
        assert current_scale().name == "small"
        monkeypatch.setenv("PIPMCOLL_SCALE", "PAPER")
        assert current_scale().name == "paper"

    def test_default_is_medium(self, monkeypatch):
        monkeypatch.delenv("PIPMCOLL_SCALE", raising=False)
        assert current_scale().name == "medium"

    def test_unknown_scale_rejected(self, monkeypatch):
        monkeypatch.setenv("PIPMCOLL_SCALE", "gigantic")
        with pytest.raises(ValueError, match="gigantic"):
            current_scale()

    def test_node_sweep_within_preset(self):
        for scale in SCALES.values():
            assert max(scale.node_sweep) <= scale.nodes


class TestPaperIterations:
    """The §IV-A iteration protocol, by size class."""

    @pytest.mark.parametrize(
        "nbytes,expected",
        [
            (16, 10_000),
            (1 * KB, 10_000),
            (1 * KB + 1, 1_000),
            (8 * KB, 1_000),
            (8 * KB + 1, 100),
            (128 * KB - 1, 100),
            (128 * KB, 10),
            (512 * KB, 10),
        ],
    )
    def test_size_classes(self, nbytes, expected):
        assert paper_iterations(nbytes) == expected

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            paper_iterations(-1)


class TestRunPoint:
    def test_result_fields(self):
        r = run_point("PiP-MColl", "scatter", 2, 2, 64)
        assert r.library == "PiP-MColl"
        assert r.collective == "scatter"
        assert r.time > 0
        assert len(r.samples) == 2
        assert r.internode_messages > 0

    def test_deterministic_across_repeats(self):
        a = run_point("PiP-MPICH", "allreduce", 3, 2, 128)
        b = run_point("PiP-MPICH", "allreduce", 3, 2, 128)
        assert a.time == b.time

    def test_warmup_iterations_are_excluded(self):
        """With a fault-paying mechanism, iteration 1 is slower; the
        measured samples must be post-warm-up and equal."""
        r = run_point("OpenMPI", "allreduce", 2, 2, 64 * KB, warmup=1, measure=3)
        for s in r.samples[1:]:
            assert s == pytest.approx(r.samples[0], rel=1e-9)
        # and warm iterations are cheaper than a cold start would be
        cold = run_point("OpenMPI", "allreduce", 2, 2, 64 * KB, warmup=0, measure=1)
        assert r.samples[0] < cold.samples[0]

    def test_all_collectives_supported(self):
        for coll in ("scatter", "allgather", "allreduce", "alltoall",
                     "bcast", "gather", "reduce"):
            assert run_point("IntelMPI", coll, 2, 2, 32).time > 0

    def test_unknown_collective_rejected(self):
        with pytest.raises(ValueError, match="alltoallw"):
            run_point("PiP-MColl", "alltoallw", 2, 2, 32)

    def test_measure_must_be_positive(self):
        with pytest.raises(ValueError, match="at least one"):
            run_point("PiP-MColl", "scatter", 2, 2, 32, measure=0)


@pytest.fixture()
def figure():
    return FigureResult(
        fig_id="figXX",
        title="demo",
        xlabel="size",
        xs=["16B", "32B"],
        series={
            "PiP-MColl": [1.0e-6, 2.0e-6],
            "Other": [2.0e-6, 3.0e-6],
            "Slow": [10.0e-6, 1.0e-6],
        },
    )


class TestReport:
    def test_format_table_contains_all_cells(self, figure):
        text = format_table(figure)
        assert "figXX" in text
        for lib in figure.series:
            assert lib in text
        assert "1.000us" in text and "3.000us" in text

    def test_format_normalized_ratios(self, figure):
        text = format_normalized(figure)
        assert "2.00x" in text  # Other at 16B
        assert "0.50x" in text  # Slow at 32B

    def test_normalized_cap(self, figure):
        text = format_normalized(figure, cap=4.0)
        assert ">4x" in text
        assert "10.00x" not in text

    def test_speedup_vs(self, figure):
        assert figure.speedup_vs("Other") == [2.0, 1.5]

    def test_best_speedup_vs_fastest_other(self, figure):
        # at 16B fastest other is 2us -> 2x; at 32B fastest other is 1us -> 0.5x
        assert figure.best_speedup_vs_fastest_other() == pytest.approx(2.0)

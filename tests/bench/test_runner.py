"""Tests for :mod:`repro.bench.runner` — pool, cache, determinism.

The load-bearing guarantee is cross-mode determinism: serial in-process
execution, pool execution, and cache hits must produce bit-identical
``MicrobenchResult`` values (the simulator is deterministic and the cache
stores exact floats), so figures cannot silently depend on ``--jobs``.
"""

import pickle
from dataclasses import replace

import pytest

from repro.bench.microbench import MicrobenchResult, run_point
from repro.bench.runner import (
    Point,
    ResultCache,
    SweepRunner,
    cache_key,
    expand_sweep,
    run_points,
)
from repro.bench.runner.cache import column_key
from repro.bench.runner.pool import run_point_spec, run_sweep_column
from repro.core.tuning import Thresholds
from repro.hw.params import bebop_broadwell

#: small but non-trivial: 2 libraries x 2 sizes x one 2x2 shape = 4 points
POINTS = expand_sweep(
    "allreduce", [64, 4096], ["PiP-MColl", "PiP-MPICH"], nodes=2, ppn=2
)


def _cache(tmp_path) -> ResultCache:
    return ResultCache(tmp_path / "cache")


# -- cross-mode determinism (the acceptance-criteria test) ----------------


def test_serial_parallel_and_cached_are_bit_identical(tmp_path):
    serial = SweepRunner(jobs=1, use_cache=False).run(POINTS)
    parallel = SweepRunner(jobs=4, use_cache=True, cache=_cache(tmp_path)).run(
        POINTS
    )
    cached = SweepRunner(jobs=1, use_cache=True, cache=_cache(tmp_path)).run(
        POINTS
    )
    # full equality — library/shape metadata, mean, and every sample
    assert serial == parallel == cached
    assert all(a.samples == b.samples for a, b in zip(serial, cached))


def test_results_come_back_in_submission_order(tmp_path):
    results = SweepRunner(jobs=2, use_cache=False).run(POINTS)
    for point, result in zip(POINTS, results):
        assert (result.library, result.msg_bytes) == (
            point.library,
            point.msg_bytes,
        )


def test_matches_direct_run_point():
    p = POINTS[0]
    direct = run_point(
        p.library, p.collective, p.nodes, p.ppn, p.msg_bytes,
        warmup=p.warmup, measure=p.measure,
    )
    via_runner = SweepRunner(jobs=1, use_cache=False).run([p])[0]
    assert direct == via_runner


# -- the on-disk cache ----------------------------------------------------


def test_cache_miss_then_hit(tmp_path):
    cache = _cache(tmp_path)
    runner = SweepRunner(jobs=1, use_cache=True, cache=cache)
    first = runner.run(POINTS)
    assert (cache.hits, cache.stores) == (0, len(POINTS))
    assert len(cache) == len(POINTS)
    second = runner.run(POINTS)
    assert cache.hits == len(POINTS)
    assert second == first


def test_no_cache_leaves_disk_untouched(tmp_path):
    cache = _cache(tmp_path)
    SweepRunner(jobs=1, use_cache=False, cache=cache).run(POINTS[:1])
    assert len(cache) == 0 and not cache.root.exists()


def test_refresh_recomputes_and_overwrites(tmp_path):
    cache = _cache(tmp_path)
    point = POINTS[0]
    real = SweepRunner(jobs=1, use_cache=True, cache=cache).run([point])[0]
    # poison the stored entry so we can tell a recompute from a hit
    # (append a newer shard: later shards win on merge)
    cache.store.append(column_key(point), [replace(real, time=-1.0)])
    poisoned = SweepRunner(jobs=1, use_cache=True, cache=cache).run([point])[0]
    assert poisoned.time == -1.0
    refreshed = SweepRunner(
        jobs=1, use_cache=True, cache=cache, refresh=True
    ).run([point])[0]
    assert refreshed == real
    # and the overwrite-by-append stuck: a fresh cache reads it from disk
    assert ResultCache(cache.root).get(point) == real


def test_corrupted_entry_is_dropped_and_recomputed(tmp_path):
    cache = _cache(tmp_path)
    point = POINTS[0]
    real = SweepRunner(jobs=1, use_cache=True, cache=cache).run([point])[0]
    shard = next((cache.root / "shards").glob("*/*.npz"))
    shard.write_bytes(b"{ not an npz shard")
    fresh = ResultCache(cache.root)
    assert fresh.get(point) is None
    # the damaged shard was removed on first scan, not rescanned forever
    assert not shard.exists()
    again = SweepRunner(jobs=1, use_cache=True, cache=fresh).run([point])[0]
    assert again == real
    assert fresh.misses >= 1


def test_cache_key_distinguishes_every_spec_field(tmp_path):
    base = Point("PiP-MColl", "allreduce", 2, 2, 64)
    variants = [
        Point("PiP-MPICH", "allreduce", 2, 2, 64),
        Point("PiP-MColl", "scatter", 2, 2, 64),
        Point("PiP-MColl", "allreduce", 4, 2, 64),
        Point("PiP-MColl", "allreduce", 2, 4, 64),
        Point("PiP-MColl", "allreduce", 2, 2, 128),
        Point("PiP-MColl", "allreduce", 2, 2, 64, warmup=2),
        Point("PiP-MColl", "allreduce", 2, 2, 64, measure=3),
        Point("PiP-MColl", "allreduce", 2, 2, 64, engine="dag"),
        Point("PiP-MColl", "allreduce", 2, 2, 64, engine="auto"),
        Point(
            "PiP-MColl", "allreduce", 2, 2, 64,
            params=bebop_broadwell().with_overrides(
                pip_sizesync_time=1e-3
            ),
        ),
    ]
    keys = {cache_key(p) for p in [base, *variants]}
    assert len(keys) == len(variants) + 1


def test_cache_key_separates_threshold_ablations():
    """Two ablation variants of one library must never collide (the
    thresholds are part of the spec), and ``thresholds=None`` (library
    default) is distinct from an explicit default ``Thresholds()``."""
    base = Point("PiP-MColl", "allreduce", 2, 2, 64)
    variants = [
        Point("PiP-MColl", "allreduce", 2, 2, 64,
              thresholds=Thresholds.always_small()),
        Point("PiP-MColl", "allreduce", 2, 2, 64,
              thresholds=Thresholds.always_large()),
        Point("PiP-MColl", "allreduce", 2, 2, 64, thresholds=Thresholds()),
    ]
    keys = {cache_key(p) for p in [base, *variants]}
    assert len(keys) == len(variants) + 1


def test_small_variant_library_never_aliases_ablated_default():
    """PiP-MColl-small (whose *default* is always_small) and PiP-MColl
    forced to always_small run identical algorithms, but their cached
    results must stay separate — the library name is in the key."""
    variant = Point("PiP-MColl-small", "allreduce", 2, 2, 64)
    ablated = Point(
        "PiP-MColl", "allreduce", 2, 2, 64,
        thresholds=Thresholds.always_small(),
    )
    assert cache_key(variant) != cache_key(ablated)


def test_threshold_override_matches_forced_small_library(tmp_path):
    # the two points above must also *measure* identically: same
    # algorithms, bit-identical simulated times
    ablated = run_point_spec(
        Point("PiP-MColl", "allgather", 2, 2, 128 * 1024,
              thresholds=Thresholds.always_small())
    )
    forced = run_point_spec(Point("PiP-MColl-small", "allgather", 2, 2,
                                  128 * 1024))
    assert ablated.samples == forced.samples


def test_threshold_override_rejected_for_fixed_libraries():
    point = Point("PiP-MPICH", "allreduce", 2, 2, 64,
                  thresholds=Thresholds.always_small())
    with pytest.raises(ValueError, match="thresholds"):
        run_point_spec(point)


def test_default_params_key_equals_explicit_default():
    implicit = Point("PiP-MColl", "allreduce", 2, 2, 64)
    explicit = Point(
        "PiP-MColl", "allreduce", 2, 2, 64, params=bebop_broadwell()
    )
    assert cache_key(implicit) == cache_key(explicit)


def test_cache_clear(tmp_path):
    cache = _cache(tmp_path)
    SweepRunner(jobs=1, use_cache=True, cache=cache).run(POINTS[:2])
    assert len(cache) == 2
    assert cache.clear() == 2
    assert len(cache) == 0


# -- pickle safety (pool workers ship these across processes) -------------


def test_point_pickle_round_trip():
    for point in (
        POINTS[0],
        Point(
            "PiP-MColl", "scatter", 4, 8, 1024, warmup=3, measure=5,
            params=bebop_broadwell(),
        ),
    ):
        clone = pickle.loads(pickle.dumps(point))
        assert clone == point
        assert cache_key(clone) == cache_key(point)


@pytest.mark.parametrize(
    "thresholds",
    [Thresholds.always_small(), Thresholds.always_large()],
    ids=["always_small", "always_large"],
)
def test_threshold_classmethods_round_trip_through_point_pickle(thresholds):
    """Both ablation classmethods survive a sweep-point pickle round trip
    (pool workers ship ablation points across process boundaries)."""
    point = Point("PiP-MColl", "allgather", 2, 2, 64, thresholds=thresholds)
    clone = pickle.loads(pickle.dumps(point))
    assert clone == point
    assert clone.thresholds == thresholds
    assert cache_key(clone) == cache_key(point)
    assert clone.spec_dict() == point.spec_dict()


def test_never_sentinel_is_named_and_unreachable():
    thr = Thresholds.always_small()
    assert thr.allgather_large_bytes == Thresholds.NEVER
    assert thr.allreduce_large_bytes == Thresholds.NEVER
    # no realistic message size reaches the sentinel
    assert Thresholds.NEVER > 2**60


def test_microbench_result_pickle_round_trip():
    result = run_point_spec(POINTS[0])
    clone = pickle.loads(pickle.dumps(result))
    assert clone == result
    assert isinstance(clone, MicrobenchResult)
    assert clone.samples == result.samples  # exact floats, not approx


def test_worker_function_pickles_by_qualified_name():
    # multiprocessing pickles the callable itself; it must stay top-level
    fn = pickle.loads(pickle.dumps(run_point_spec))
    assert fn is run_point_spec


# -- column routing: the batch engine through the runner ------------------

#: one batch column: 4 sizes of one (library, collective, shape)
COLUMN_POINTS = [
    Point("PiP-MColl", "allgather", 2, 2, s, engine="batch")
    for s in (64, 1024, 16384, 65536)
]


def _dag_reference(points):
    return [
        run_point(p.library, p.collective, p.nodes, p.ppn, p.msg_bytes,
                  warmup=p.warmup, measure=p.measure, engine="dag")
        for p in points
    ]


def test_batch_column_through_runner_identical_to_dag(tmp_path):
    got = SweepRunner(jobs=1, use_cache=False).run(COLUMN_POINTS)
    for g, ref in zip(got, _dag_reference(COLUMN_POINTS)):
        assert g.samples == ref.samples
        assert g.internode_messages == ref.internode_messages


def test_auto_upgrades_multi_size_columns_and_stays_identical(tmp_path):
    pts = expand_sweep(
        "allgather", [64, 1024, 16384], ["PiP-MColl", "PiP-MPICH"],
        nodes=2, ppn=2, engine="auto",
    )
    cache = _cache(tmp_path)
    got = SweepRunner(jobs=1, use_cache=True, cache=cache).run(pts)
    for g, ref in zip(got, _dag_reference(pts)):
        assert g.samples == ref.samples
    # the upgrade routed the points through the columnar store: npz
    # shards only, never JSON files
    assert sorted((cache.root / "shards").glob("*/*.npz"))
    assert not list(cache.root.rglob("*.json"))
    # and a rerun is pure column hits
    again = SweepRunner(jobs=1, use_cache=True, cache=cache).run(pts)
    assert again == got
    assert cache.hits == len(pts)


def test_single_size_auto_point_lands_in_its_column_group(tmp_path):
    cache = _cache(tmp_path)
    point = Point("PiP-MColl", "allgather", 2, 2, 1024, engine="auto")
    SweepRunner(jobs=1, use_cache=True, cache=cache).run([point])
    assert len(cache) == 1
    assert cache.store.shard_count() == 1


def test_parallel_column_execution_identical(tmp_path):
    pts = COLUMN_POINTS + [
        Point("PiP-MPICH", "allgather", 2, 2, s, engine="batch")
        for s in (64, 1024)
    ]
    serial = SweepRunner(jobs=1, use_cache=False).run(pts)
    parallel = SweepRunner(jobs=2, use_cache=False).run(pts)
    assert serial == parallel


@pytest.mark.parametrize("jobs", (1, 2))
def test_lowering_counters_aggregate_across_column_work_units(jobs):
    """Workers are separate processes, so their lowering counters die with
    them; the runner must ship per-work-unit deltas home and sum them."""
    from repro.sched.batch import clear_lowering_cache

    clear_lowering_cache()  # serial path shares this process's cache
    pts = COLUMN_POINTS + [
        Point("PiP-MPICH", "allgather", 2, 2, s, engine="batch")
        for s in (64, 1024, 16384)
    ]
    runner = SweepRunner(jobs=jobs, use_cache=False)
    assert runner.lowering_cache_totals() == {
        "hits": 0, "misses": 0, "columns": 0,
        "jit_columns": 0, "interp_columns": 0, "native_bailouts": 0,
    }
    runner.run(pts)
    totals = runner.lowering_cache_totals()
    assert totals["columns"] == 2
    assert totals["hits"] + totals["misses"] > 0
    assert totals["misses"] > 0  # fresh work units always lower something


def test_lowering_delta_worker_returns_results_and_counters():
    from repro.bench.runner.pool import run_sweep_column_stats
    from repro.sched.batch import clear_lowering_cache

    clear_lowering_cache()
    col_results, delta = run_sweep_column_stats(COLUMN_POINTS)
    assert col_results == run_sweep_column(COLUMN_POINTS)
    assert set(delta) == {
        "hits", "misses", "kernel_mode", "native_bailouts",
    }
    assert delta["misses"] > 0
    clear_lowering_cache()


def test_get_many_put_many_round_trip_and_accounting(tmp_path):
    cache = _cache(tmp_path)
    results = run_sweep_column(COLUMN_POINTS)
    cache.put_many(COLUMN_POINTS, results)
    assert cache.stores == len(COLUMN_POINTS)
    assert cache.bytes_written > 0
    # one column -> exactly one shard on disk, published by the put_many
    assert cache.store.shard_count() == 1
    assert cache.flushes == 1
    assert len(cache) == len(COLUMN_POINTS)
    back = cache.get_many(COLUMN_POINTS)
    assert back == results
    assert cache.hits == len(COLUMN_POINTS)
    # a fresh cache object reads the same entries back from disk (the
    # writer served its own appends from the in-memory index, read-free)
    fresh = ResultCache(cache.root)
    assert fresh.get_many(COLUMN_POINTS) == results
    assert fresh.bytes_read > 0


def test_put_many_merges_instead_of_clobbering(tmp_path):
    cache = _cache(tmp_path)
    first, rest = COLUMN_POINTS[:2], COLUMN_POINTS[2:]
    results = run_sweep_column(COLUMN_POINTS)
    cache.put_many(first, results[:2])
    cache.put_many(rest, results[2:])
    assert cache.get_many(COLUMN_POINTS) == results
    # append-only: two puts -> two shards of one group, merged on read
    assert cache.store.shard_count() == 2
    assert ResultCache(cache.root).get_many(COLUMN_POINTS) == results


def test_corrupted_column_shard_is_dropped_and_missed(tmp_path):
    cache = _cache(tmp_path)
    results = run_sweep_column(COLUMN_POINTS)
    cache.put_many(COLUMN_POINTS, results)
    path = next((cache.root / "shards").glob("*/*.npz"))
    path.write_bytes(b"torn write")
    fresh = ResultCache(cache.root)
    assert fresh.get_many(COLUMN_POINTS) == [None] * len(COLUMN_POINTS)
    assert fresh.misses == len(COLUMN_POINTS)
    assert not path.exists()


def test_put_many_rejects_length_mismatch(tmp_path):
    with pytest.raises(ValueError, match="points"):
        _cache(tmp_path).put_many(COLUMN_POINTS, [])


def test_column_key_groups_by_everything_but_size():
    a, b = COLUMN_POINTS[0], COLUMN_POINTS[1]
    assert a.msg_bytes != b.msg_bytes
    assert column_key(a) == column_key(b)
    for variant in (
        Point("PiP-MPICH", "allgather", 2, 2, 64, engine="batch"),
        Point("PiP-MColl", "allreduce", 2, 2, 64, engine="batch"),
        Point("PiP-MColl", "allgather", 4, 2, 64, engine="batch"),
        Point("PiP-MColl", "allgather", 2, 2, 64, engine="auto"),
        Point("PiP-MColl", "allgather", 2, 2, 64, engine="batch", warmup=2),
        Point("PiP-MColl", "allgather", 2, 2, 64, engine="batch",
              thresholds=Thresholds.always_small()),
    ):
        assert column_key(variant) != column_key(a), variant


def test_cache_key_distinct_per_engine_including_batch():
    keys = {
        cache_key(Point("PiP-MColl", "allgather", 2, 2, 64, engine=e))
        for e in ("event", "dag", "batch", "auto")
    }
    assert len(keys) == 4


def test_grouped_sweep_never_relowers():
    """The pool warm start: one lowering per column structure, reused
    across every size and every repeat sweep."""
    from repro.sched.batch import clear_lowering_cache, lowering_cache_info

    clear_lowering_cache()
    runner = SweepRunner(jobs=1, use_cache=False)
    runner.run(COLUMN_POINTS)
    first = lowering_cache_info()
    assert first.misses > 0
    runner.run(COLUMN_POINTS)
    second = lowering_cache_info()
    assert second.misses == first.misses
    assert second.hits > first.hits


def test_cache_clear_removes_column_entries(tmp_path):
    cache = _cache(tmp_path)
    SweepRunner(jobs=1, use_cache=True, cache=cache).run(COLUMN_POINTS[:2])
    assert len(cache) == 2
    assert cache.clear() >= 1
    assert len(cache) == 0


# -- sweep expansion and env knobs ----------------------------------------


def test_expand_sweep_is_size_major_then_library():
    pts = expand_sweep("scatter", [64, 128], ["A", "B"], nodes=2, ppn=2)
    assert [(p.msg_bytes, p.library) for p in pts] == [
        (64, "A"), (64, "B"), (128, "A"), (128, "B"),
    ]


def test_jobs_env_knob(monkeypatch):
    monkeypatch.setenv("PIPMCOLL_JOBS", "3")
    assert SweepRunner(use_cache=False).jobs == 3
    monkeypatch.setenv("PIPMCOLL_JOBS", "banana")
    with pytest.raises(ValueError):
        SweepRunner(use_cache=False)


def test_cache_env_knob(monkeypatch, tmp_path):
    monkeypatch.setenv("PIPMCOLL_CACHE_DIR", str(tmp_path / "envcache"))
    monkeypatch.setenv("PIPMCOLL_CACHE", "0")
    assert SweepRunner(jobs=1).use_cache is False
    monkeypatch.setenv("PIPMCOLL_CACHE", "1")
    runner = SweepRunner(jobs=1)
    assert runner.use_cache is True
    assert runner.cache.root == tmp_path / "envcache"


def test_empty_env_flag_means_unset_not_false(monkeypatch, tmp_path):
    """``PIPMCOLL_CACHE=""`` (set but empty, e.g. ``VAR= cmd`` or an
    empty CI secret) must fall back to the default, not read as an
    explicit false."""
    monkeypatch.setenv("PIPMCOLL_CACHE_DIR", str(tmp_path / "envcache"))
    monkeypatch.setenv("PIPMCOLL_CACHE", "")
    assert SweepRunner(jobs=1).use_cache is True  # the default
    monkeypatch.setenv("PIPMCOLL_CACHE", "   ")
    assert SweepRunner(jobs=1).use_cache is True


def test_empty_progress_env_flag_means_unset(monkeypatch, capsys):
    monkeypatch.setenv("PIPMCOLL_PROGRESS", "")
    SweepRunner(jobs=1, use_cache=False).run(POINTS[:1])
    assert capsys.readouterr().err == ""  # default: no progress bar
    monkeypatch.setenv("PIPMCOLL_PROGRESS", "1")
    SweepRunner(jobs=1, use_cache=False).run(POINTS[:1])
    assert "1/1" in capsys.readouterr().err


def test_zero_measure_column_fails_fast_like_run_point(monkeypatch):
    """``run_sweep_column`` with ``measure=0`` must raise the same
    ``ValueError`` as ``run_point`` — up front, before the batch engine
    is ever invoked deep inside a pool worker."""
    import repro.sched.batch as batch

    called = []

    def engine_stub(*args, **kwargs):  # pragma: no cover - fails the test
        called.append(args)
        raise AssertionError("engine must not run for measure=0")

    monkeypatch.setattr(batch, "evaluate_column", engine_stub)
    points = [
        replace(p, measure=0)
        for p in expand_sweep(
            "allgather", [64, 4096], ["PiP-MColl"], nodes=2, ppn=2
        )
    ]
    with pytest.raises(ValueError, match="at least one measured iteration"):
        run_sweep_column(points)
    assert called == []


def test_progress_reports_source(tmp_path):
    cache = _cache(tmp_path)
    events = []

    def progress(done, total, point, source):
        events.append((done, total, point.label(), source))

    SweepRunner(jobs=1, use_cache=True, cache=cache, progress=progress).run(
        POINTS[:2]
    )
    assert [e[3] for e in events] == ["run", "run"]
    events.clear()
    SweepRunner(jobs=1, use_cache=True, cache=cache, progress=progress).run(
        POINTS[:2]
    )
    assert [e[3] for e in events] == ["cache", "cache"]
    assert [e[0] for e in events] == [1, 2]
    assert all(e[1] == 2 for e in events)


def test_run_points_uses_env_default_runner(monkeypatch, tmp_path):
    monkeypatch.setenv("PIPMCOLL_JOBS", "1")
    monkeypatch.setenv("PIPMCOLL_CACHE_DIR", str(tmp_path / "rp"))
    results = run_points(POINTS[:1])
    assert results[0].library == POINTS[0].library
    assert len(ResultCache()) == 1

"""Tests for the run-diagnostics module."""

import pytest

from repro.bench.stats import (
    collect_stats,
    format_stats,
    message_histogram,
    size_class_of,
)
from repro.core import mcoll_allgather_small
from repro.hw import Topology, tiny_test_machine
from repro.mpi import Buffer, World
from repro.shmem import PipShmem
from repro.util.units import KB


def run_allgather_world(nodes=3, ppn=2, nbytes=64):
    world = World(
        Topology(nodes, ppn), tiny_test_machine(), mechanism=PipShmem(),
        phantom=True,
    )
    size = world.world_size
    sends = [Buffer.phantom(nbytes) for _ in range(size)]
    recvs = [Buffer.phantom(nbytes * size) for _ in range(size)]

    def body(ctx):
        yield from mcoll_allgather_small(ctx, sends[ctx.rank], recvs[ctx.rank])

    world.run(body)
    return world


class TestCollectStats:
    def test_counts_match_hardware(self):
        world = run_allgather_world()
        stats = collect_stats(world)
        assert stats.internode_messages == world.hw.total_internode_messages()
        assert stats.internode_bytes == world.hw.total_internode_bytes()
        assert stats.nodes == 3
        assert len(stats.per_node_sent) == 3

    def test_allgather_is_wire_balanced(self):
        """Every node ships the same bytes — balance exactly 1.0."""
        stats = collect_stats(run_allgather_world())
        assert stats.wire_balance == pytest.approx(1.0)

    def test_memory_accounting_present(self):
        stats = collect_stats(run_allgather_world())
        assert sum(stats.memory_bytes_copied) > 0
        assert sum(stats.memory_busy) > 0

    def test_balance_infinite_when_a_node_is_silent(self):
        from repro.core import mcoll_scatter

        world = World(
            Topology(3, 2), tiny_test_machine(), mechanism=PipShmem(),
            phantom=True,
        )
        size = world.world_size
        full = Buffer.phantom(64 * size)
        recvs = [Buffer.phantom(64) for _ in range(size)]

        def body(ctx):
            sb = full if ctx.rank == 0 else None
            yield from mcoll_scatter(ctx, sb, recvs[ctx.rank])

        world.run(body)
        stats = collect_stats(world)
        # leaf nodes send nothing in a scatter
        assert stats.wire_balance == float("inf")

    def test_format_stats_readable(self):
        stats = collect_stats(run_allgather_world())
        text = format_stats(stats, title="allgather 3x2")
        assert "allgather 3x2" in text
        assert "internode" in text
        assert "unexpected" in text


class TestSizeClasses:
    @pytest.mark.parametrize(
        "nbytes,expected",
        [
            (0, "<=1kB"),
            (1 * KB, "<=1kB"),
            (1 * KB + 1, "<=8kB"),
            (8 * KB, "<=8kB"),
            (100 * KB, "<128kB"),
            (128 * KB, ">=128kB"),
            (10 * 1024 * KB, ">=128kB"),
        ],
    )
    def test_size_class_of(self, nbytes, expected):
        assert size_class_of(nbytes) == expected

    def test_histogram(self):
        hist = message_histogram([16, 2 * KB, 2 * KB, 256 * KB])
        assert hist["<=1kB"] == 1
        assert hist["<=8kB"] == 2
        assert hist["<128kB"] == 0
        assert hist[">=128kB"] == 1

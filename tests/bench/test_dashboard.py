"""Tests for ``python -m repro.bench.dashboard``.

Two pins: the dashboard must parse every ``BENCH_*.json`` the repository
actually commits (so a schema drift in ``bench_speed.py`` fails here,
not in a cron job), and it must flag an injected regression across a
real git history.
"""

import json
import shutil
import subprocess
from pathlib import Path

import pytest

from repro.bench.dashboard import headline_metric, main

REPO_ROOT = Path(__file__).resolve().parents[2]

needs_git = pytest.mark.skipif(
    shutil.which("git") is None, reason="git not installed"
)


# -- headline metric selection ---------------------------------------------


def test_headline_metric_prefers_most_derived_engine():
    doc = {"aggregate": {
        "dag_points_per_sec": 1.0,
        "store_points_per_sec": 2.0,
        "speedup": 99.0,
    }}
    assert headline_metric(doc) == ("store_points_per_sec", 2.0)


def test_headline_metric_falls_back_to_any_points_per_sec():
    doc = {"aggregate": {"custom_points_per_sec": 7.5, "other": 1}}
    assert headline_metric(doc) == ("custom_points_per_sec", 7.5)


def test_headline_metric_rejects_metricless_docs():
    with pytest.raises(ValueError):
        headline_metric({"aggregate": {"speedup": 2.0}})
    with pytest.raises(ValueError):
        headline_metric({})


# -- the committed benchmark documents -------------------------------------


def test_every_committed_bench_document_parses():
    files = sorted(REPO_ROOT.glob("BENCH_*.json"))
    assert files, "repository must commit at least one BENCH_*.json"
    for path in files:
        metric, value = headline_metric(json.loads(path.read_text()))
        assert metric.endswith("points_per_sec")
        assert value > 0


def test_dashboard_runs_over_the_repository(capsys):
    rc = main(["--dir", str(REPO_ROOT), "--commits", "0"])
    out = capsys.readouterr().out
    assert rc == 0
    for path in sorted(REPO_ROOT.glob("BENCH_*.json")):
        assert path.name in out


def test_dashboard_exits_2_without_bench_files(tmp_path, capsys):
    assert main(["--dir", str(tmp_path)]) == 2
    assert "no BENCH_*.json" in capsys.readouterr().err


# -- regression detection across a git history -----------------------------


def _git(repo: Path, *args: str) -> None:
    subprocess.run(
        ["git", *args], cwd=repo, check=True, capture_output=True,
        env={
            "GIT_AUTHOR_NAME": "t", "GIT_AUTHOR_EMAIL": "t@t",
            "GIT_COMMITTER_NAME": "t", "GIT_COMMITTER_EMAIL": "t@t",
            "HOME": str(repo), "PATH": "/usr/bin:/bin:/usr/local/bin",
        },
    )


def _write_doc(repo: Path, pts_per_sec: float) -> None:
    (repo / "BENCH_store.json").write_text(json.dumps(
        {"aggregate": {"store_points_per_sec": pts_per_sec}}
    ))


@needs_git
def test_dashboard_flags_injected_regression(tmp_path, capsys):
    repo = tmp_path / "repo"
    repo.mkdir()
    _git(repo, "init", "-q")
    _write_doc(repo, 100_000.0)
    _git(repo, "add", "BENCH_store.json")
    _git(repo, "commit", "-qm", "good run")
    _write_doc(repo, 120_000.0)
    _git(repo, "add", "BENCH_store.json")
    _git(repo, "commit", "-qm", "better run")

    # working tree regresses far below threshold x best committed
    _write_doc(repo, 10_000.0)
    rc = main(["--dir", str(repo), "--check"])
    out = capsys.readouterr().out
    assert rc == 1
    assert "REGRESSION" in out
    assert "120000.0" in out  # compared against the best, not the latest

    # without --check the regression is reported but the exit is clean
    assert main(["--dir", str(repo)]) == 0
    assert "REGRESSION" in capsys.readouterr().out


@needs_git
def test_dashboard_passes_healthy_history(tmp_path, capsys):
    repo = tmp_path / "repo"
    repo.mkdir()
    _git(repo, "init", "-q")
    _write_doc(repo, 100_000.0)
    _git(repo, "add", "BENCH_store.json")
    _git(repo, "commit", "-qm", "baseline")
    _write_doc(repo, 95_000.0)  # noise-level dip, above 0.8x
    rc = main(["--dir", str(repo), "--check"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "ok: within" in out
    assert "all benchmarks within threshold" in out

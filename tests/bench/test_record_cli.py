"""Tests for the ``python -m repro.bench.record`` CLI."""

import pytest

from repro.bench.record import main


def test_records_figure_to_file(tmp_path, capsys, monkeypatch):
    monkeypatch.setenv("PIPMCOLL_SCALE", "small")
    out = tmp_path / "run.txt"
    rc = main(["--figures", "fig06", "--scale", "small", "--out", str(out)])
    assert rc == 0
    text = out.read_text()
    assert "fig06" in text
    assert "PiP-MColl" in text and "PiP-MPICH" in text
    assert "done in" in text
    # stdout mirrors the file
    assert "fig06" in capsys.readouterr().out


def test_unknown_figure_rejected(capsys):
    with pytest.raises(SystemExit):
        main(["--figures", "fig99", "--scale", "small"])


def test_unknown_scale_rejected(capsys):
    with pytest.raises(SystemExit):
        main(["--figures", "fig06", "--scale", "galactic"])

"""Tests for the ``python -m repro.bench.record`` CLI."""

import pytest

from repro.bench.record import main


def test_records_figure_to_file(tmp_path, capsys, monkeypatch):
    monkeypatch.setenv("PIPMCOLL_SCALE", "small")
    out = tmp_path / "run.txt"
    rc = main(["--figures", "fig06", "--scale", "small", "--out", str(out)])
    assert rc == 0
    text = out.read_text()
    assert "fig06" in text
    assert "PiP-MColl" in text and "PiP-MPICH" in text
    assert "done in" in text
    # stdout mirrors the file
    assert "fig06" in capsys.readouterr().out


def test_cache_stats_reports_store_shape(capsys):
    rc = main(["--figures", "fig06", "--scale", "small", "--cache-stats"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "[cache:" in out and "point /" in out and "column)" in out
    assert "stores in" in out and "flushes" in out
    assert "[store:" in out and "shards on disk" in out
    assert "index" in out and "entries]" in out


def test_incremental_skips_unchanged_figure_and_reruns_after_change(capsys):
    from repro.bench.runner import ResultCache

    rc = main(["--figures", "fig06", "--scale", "small", "--incremental"])
    assert rc == 0
    first = capsys.readouterr().out
    assert "skipped (incremental)" not in first

    rc = main(["--figures", "fig06", "--scale", "small", "--incremental"])
    assert rc == 0
    second = capsys.readouterr().out
    assert "fig06 backing shards unchanged, skipped (incremental)" in second
    assert "done in" not in second

    # touching the backing store invalidates the fingerprint
    ResultCache().clear()
    rc = main(["--figures", "fig06", "--scale", "small", "--incremental"])
    assert rc == 0
    third = capsys.readouterr().out
    assert "skipped (incremental)" not in third
    assert "done in" in third


def test_incremental_refresh_always_reruns(capsys):
    rc = main(["--figures", "fig06", "--scale", "small", "--incremental"])
    assert rc == 0
    capsys.readouterr()
    rc = main([
        "--figures", "fig06", "--scale", "small", "--incremental",
        "--refresh",
    ])
    assert rc == 0
    assert "skipped (incremental)" not in capsys.readouterr().out


def test_incremental_requires_cache():
    with pytest.raises(SystemExit):
        main([
            "--figures", "fig06", "--scale", "small", "--incremental",
            "--no-cache",
        ])


def test_trace_flag_dumps_phase_tagged_perfetto_json(tmp_path, capsys):
    import json

    out = tmp_path / "trace.json"
    rc = main([
        "--scale", "small",
        "--trace", str(out),
        "--trace-point", "PiP-MColl/allreduce/64K",
    ])
    assert rc == 0
    trace = json.loads(out.read_text())
    events = trace["traceEvents"] if isinstance(trace, dict) else trace
    assert events, "trace must contain spans"
    phases = {e["args"].get("phase") for e in events if "args" in e}
    phases.discard(None)
    assert phases, "spans must carry phase tags"
    stdout = capsys.readouterr().out
    assert "traced" in stdout and "phases:" in stdout


def test_trace_without_point_rejected():
    with pytest.raises(SystemExit):
        main(["--scale", "small", "--trace", "out.json"])


def test_trace_point_bad_spec_rejected(tmp_path):
    with pytest.raises(SystemExit):
        main([
            "--scale", "small", "--trace", str(tmp_path / "t.json"),
            "--trace-point", "PiP-MColl/allreduce",
        ])


def test_unknown_figure_rejected(capsys):
    with pytest.raises(SystemExit):
        main(["--figures", "fig99", "--scale", "small"])


def test_unknown_scale_rejected(capsys):
    with pytest.raises(SystemExit):
        main(["--figures", "fig06", "--scale", "galactic"])

"""Micro-profile guarding the engine hot path.

The sweep-runner speedup rests on the engine stepping cheaply: tuple heap
entries instead of per-step lambda closures, an exact-type ``Delay`` fast
path, and direct ``Process`` dispatch from ``Event.trigger``.  These tests
pin the *structure* of the hot path (which cannot flake) and add one very
generous throughput floor (far below what any supported machine delivers,
so it only fires on a complexity regression, not on a noisy host).
"""

import time

from repro.sim.engine import Delay, Engine, WaitEvent


def test_delay_heap_entries_are_plain_tuples():
    # no closure objects on the heap: a Delay schedules (time, seq, proc,
    # value, fn=None) so _step resumes the generator without indirection
    eng = Engine()

    def body():
        yield Delay(1.0)

    proc = eng.spawn(body())
    entry = eng._heap[0]
    assert isinstance(entry, tuple) and len(entry) == 5
    assert entry[2] is proc and entry[4] is None


def test_event_trigger_dispatches_processes_without_wrappers():
    # a waiting Process is stored directly in the event's callback list —
    # trigger() moves it onto the ready queue with no lambda in between
    eng = Engine()
    ev = eng.event()

    def body():
        yield WaitEvent(ev)

    proc = eng.spawn(body())
    eng.run(until=0.0)  # let the waiter register
    assert any(cb is proc for cb in ev._callbacks)
    ev.trigger("x")
    assert (proc, "x") in eng._ready
    eng.run()
    assert proc.finished


def test_step_throughput_floor():
    # 20k delay-steps across 200 interleaved processes.  The optimized
    # engine does this in well under 100 ms; the floor of 2 s only trips
    # if stepping regresses to something superlinear or reintroduces
    # heavyweight per-step allocation.
    eng = Engine()
    steps_per_proc, nprocs = 100, 200

    def worker(i):
        for k in range(steps_per_proc):
            yield Delay(((i + k) % 7) * 1e-6)

    for i in range(nprocs):
        eng.spawn(worker(i))
    t0 = time.perf_counter()
    eng.run()
    wall = time.perf_counter() - t0
    assert wall < 2.0, f"{steps_per_proc * nprocs} steps took {wall:.2f}s"


def test_throughput_workload_is_deterministic():
    # the same workload twice -> identical final clock, so the profile
    # workload itself can't mask an ordering regression
    def run_once():
        eng = Engine()

        def worker(i):
            for k in range(50):
                yield Delay(((i * 13 + k) % 11) * 1e-6)

        for i in range(50):
            eng.spawn(worker(i))
        eng.run()
        return eng.now

    assert run_once() == run_once()

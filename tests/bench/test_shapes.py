"""Fast shape checks of the headline results (small cluster, quick points).

These assert the *relationships* the paper's evaluation reports — who wins
where, and where the crossovers sit — at a scale small enough for the unit
test suite.  The full-figure versions live in ``benchmarks/``; the recorded
paper-scale tables are in ``results/`` and EXPERIMENTS.md.
"""

import pytest

from repro.bench.microbench import run_point
from repro.util.units import KB

NODES, PPN = 8, 6


def t(lib, coll, nbytes, nodes=NODES, ppn=PPN):
    return run_point(lib, coll, nodes, ppn, nbytes).time


class TestSmallMessageWins:
    """Figs. 6, 7, 9, 10: multi-object wins for small messages."""

    @pytest.mark.parametrize("coll", ["scatter", "allgather"])
    def test_mcoll_beats_baseline(self, coll):
        assert t("PiP-MColl", coll, 64) < t("PiP-MPICH", coll, 64)

    @pytest.mark.parametrize("coll", ["scatter", "allgather"])
    def test_mcoll_beats_hierarchical_libs(self, coll):
        for lib in ("IntelMPI", "MVAPICH2"):
            assert t("PiP-MColl", coll, 64) < t(lib, coll, 64)

    def test_allgather_speedup_grows_with_nodes(self):
        """Fig. 7's trend: the gap vs the baseline widens with node count."""
        gain_small = t("PiP-MPICH", "allgather", 16, nodes=2) / t(
            "PiP-MColl", "allgather", 16, nodes=2
        )
        gain_large = t("PiP-MPICH", "allgather", 16, nodes=32) / t(
            "PiP-MColl", "allgather", 16, nodes=32
        )
        assert gain_large > gain_small


class TestAlgorithmSwitches:
    """Figs. 13-14: the 64 kB switches pay off."""

    def test_allgather_switch_beneficial(self):
        big = 128 * KB
        assert t("PiP-MColl", "allgather", big) < t(
            "PiP-MColl-small", "allgather", big
        )

    def test_allgather_small_algo_better_below_switch(self):
        small = 512
        assert t("PiP-MColl", "allgather", small) == pytest.approx(
            t("PiP-MColl-small", "allgather", small), rel=1e-9
        )

    def test_allreduce_switch_beneficial(self):
        big = 64 * 1024 * 8  # 64k doubles
        assert t("PiP-MColl", "allreduce", big) < 0.7 * t(
            "PiP-MColl-small", "allreduce", big
        )

    def test_allreduce_crossover_band_exists(self):
        """Fig. 14: somewhere in the medium-count band a baseline beats
        the small algorithm — the reason the switch exists."""
        mid = 4 * 1024 * 8  # 4k doubles, below the 8k switch
        mcoll = t("PiP-MColl", "allreduce", mid)
        best_other = min(
            t(lib, "allreduce", mid) for lib in ("PiP-MPICH", "OpenMPI")
        )
        assert best_other < mcoll * 1.25  # competitive-to-winning


class TestScatterTrend:
    """Fig. 12: scatter speedup decays as bandwidth saturates."""

    def test_speedup_decays_with_size(self):
        small_gain = t("PiP-MPICH", "scatter", 1 * KB) / t(
            "PiP-MColl", "scatter", 1 * KB
        )
        large_gain = t("PiP-MPICH", "scatter", 512 * KB) / t(
            "PiP-MColl", "scatter", 512 * KB
        )
        assert large_gain < small_gain
        assert large_gain > 1.0  # but PiP-MColl still wins


class TestBaselineCharacter:
    """§II/§IV observations about the baselines themselves."""

    def test_pip_mpich_hurt_by_sizesync_on_small_allgather(self):
        """PiP-MPICH is sometimes the worst library for small allgather
        (Fig. 10's observation) — at minimum, worse than Intel MPI."""
        assert t("IntelMPI", "allgather", 16) < t("PiP-MPICH", "allgather", 16)

    def test_hierarchical_beats_flat_for_small_allreduce(self):
        assert t("IntelMPI", "allreduce", 128) < t("OpenMPI", "allreduce", 128)

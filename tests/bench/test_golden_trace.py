"""Golden-trace regression pins: exact simulated times for fixed points.

These values were captured from the simulator before the engine hot-path
rewrite and must never drift: every engine or transport optimization is
required to be *semantics-preserving*, and equality here is exact float
equality, not approx.  If a change legitimately alters the model (a
parameter fix, a new contention term), recapture the constants in the
same commit and say why in its message.

Shape: 2 nodes x 2 ppn, warmup=1, measure=2 — the microbench defaults.
"""

import pytest

from repro.bench.microbench import run_point

#: (library, collective, msg_bytes) -> (samples, mean time, internode msgs)
GOLDEN = {
    ("PiP-MColl", "scatter", 64): (
        (2.3666461538461537e-06, 2.3666461538461533e-06),
        2.3666461538461533e-06,
        3,
    ),
    ("PiP-MColl", "scatter", 8192): (
        (7.479288888888889e-06, 7.479288888888894e-06),
        7.479288888888892e-06,
        3,
    ),
    ("PiP-MColl", "allreduce", 64): (
        (3.6534461538461534e-06, 3.6534461538461576e-06),
        3.6534461538461555e-06,
        6,
    ),
    ("PiP-MColl", "allreduce", 8192): (
        (1.1619244444444444e-05, 1.1619244444444465e-05),
        1.1619244444444455e-05,
        6,
    ),
    ("PiP-MPICH", "scatter", 64): (
        (2.529446153846154e-06, 2.5294461538461536e-06),
        2.5294461538461536e-06,
        3,
    ),
    ("PiP-MPICH", "scatter", 8192): (
        (9.267688888888894e-06, 9.267688888888894e-06),
        9.267688888888894e-06,
        3,
    ),
    ("PiP-MPICH", "allreduce", 64): (
        (2.661446153846154e-06, 2.6614461538461534e-06),
        2.6614461538461534e-06,
        12,
    ),
    ("PiP-MPICH", "allreduce", 8192): (
        (1.0264044444444448e-05, 1.0264044444444448e-05),
        1.0264044444444448e-05,
        24,
    ),
}


@pytest.mark.parametrize(
    "library,collective,msg_bytes",
    sorted(GOLDEN),
    ids=[f"{lib}-{coll}-{nb}" for lib, coll, nb in sorted(GOLDEN)],
)
def test_golden_trace(library, collective, msg_bytes):
    samples, mean, internode = GOLDEN[(library, collective, msg_bytes)]
    result = run_point(library, collective, 2, 2, msg_bytes)
    assert result.samples == samples
    assert result.time == mean
    assert result.internode_messages == internode

"""Tests for the columnar shard store — concurrency, damage, migration.

The store's three load-bearing promises (see
:mod:`repro.bench.runner.store`):

* **append-only** — concurrent writers to the same column group cannot
  lose each other's rows;
* **crash-safe** — a torn or truncated shard is skipped and removed,
  never crashed on, and an interrupted write publishes nothing;
* **bit-identical** — everything that goes in comes back out exactly,
  including through the legacy-JSON migration path.

The production read fallback for pre-1.4.0 JSON trees was removed after
its scheduled one-release window; these tests fabricate the old layout
locally to pin that ``migrate`` still converts it and that lookups no
longer consult it.
"""

import json
import multiprocessing

from repro.bench.microbench import MicrobenchResult
from repro.bench.runner import Point, ResultCache
from repro.bench.runner.cache import (
    CACHE_EPOCH,
    cache_key,
    column_key,
    main as cache_main,
    migrate,
    result_to_doc,
)
from repro.bench.runner.pool import run_sweep_column
from repro.bench.runner.store import ShardStore

AXIS = (64, 1024, 16384, 65536)
POINTS = [
    Point("PiP-MColl", "allgather", 2, 2, s, engine="batch") for s in AXIS
]

#: the epoch pre-1.4.0 caches were keyed under
LEGACY_EPOCH = "1.3.0"


def _write_json_point(root, point, result, epoch=LEGACY_EPOCH):
    """One pre-1.4.0 per-point JSON file, at its documented path."""
    key = cache_key(point, epoch)
    path = root / key[:2] / f"{key}.json"
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps({"version": epoch, **result_to_doc(result)}))
    return path


def _write_json_column(root, points, results, epoch=LEGACY_EPOCH):
    """One pre-1.4.0 column JSON document, at its documented path."""
    key = column_key(points[0], epoch)
    path = root / "columns" / key[:2] / f"{key}.json"
    path.parent.mkdir(parents=True, exist_ok=True)
    entries = {
        str(p.msg_bytes): result_to_doc(r) for p, r in zip(points, results)
    }
    path.write_text(json.dumps({"version": epoch, "entries": entries}))
    return path


def _row(msg_bytes: int, time: float = 1.0) -> MicrobenchResult:
    return MicrobenchResult(
        library="PiP-MColl", collective="allgather", nodes=2, ppn=2,
        msg_bytes=msg_bytes, time=time, samples=(time, time + 1e-9),
        internode_messages=7,
    )


# -- concurrent appends to one column group --------------------------------


def test_two_writers_same_group_lose_nothing(tmp_path):
    """Two cache objects (two pool runs) flushing the same column group:
    both shards land, the merged view is the union."""
    a, b = ResultCache(tmp_path), ResultCache(tmp_path)
    results = run_sweep_column(POINTS)
    # interleave: each writer holds half the column, flushes unaware of
    # the other (the read-merge-replace race the JSON layout had)
    a.put_many(POINTS[:2], results[:2])
    b.put_many(POINTS[2:], results[2:])
    fresh = ResultCache(tmp_path)
    assert fresh.get_many(POINTS) == results
    assert fresh.store.shard_count() == 2


def _append_worker(args):
    root, key, sizes = args
    store = ShardStore(root)
    store.append(key, [_row(s) for s in sizes])
    return True


def test_concurrent_process_appends_all_land(tmp_path):
    """Real concurrency: several processes append to the same group at
    once; the pid filename suffix breaks sequence-number ties, so every
    shard publishes and the merged view holds every row."""
    key = column_key(POINTS[0])
    sizes = [tuple(range(i * 10, i * 10 + 5)) for i in range(4)]
    with multiprocessing.get_context("spawn").Pool(4) as pool:
        done = pool.map(
            _append_worker, [(str(tmp_path), key, s) for s in sizes]
        )
    assert all(done)
    store = ShardStore(tmp_path)
    merged = store.group(key)
    assert set(merged) == {s for group in sizes for s in group}
    assert store.shard_count() == 4


def test_append_sequence_numbers_advance_past_existing_shards(tmp_path):
    first = ShardStore(tmp_path)
    first.append("aa" * 32, [_row(1)])
    # a second store object (separate runner) scans disk for the floor
    second = ShardStore(tmp_path)
    second.append("aa" * 32, [_row(2)])
    names = sorted(p.name for p in first.shard_files("aa" * 32))
    assert [n.split(".")[1].split("-")[0] for n in names] == ["0000", "0001"]


def test_later_shards_win_per_size(tmp_path):
    store = ShardStore(tmp_path)
    key = "bb" * 32
    store.append(key, [_row(64, time=1.0), _row(128, time=2.0)])
    store.append(key, [_row(64, time=9.0)])
    fresh = ShardStore(tmp_path)
    merged = fresh.group(key)
    assert merged[64].time == 9.0  # overwritten by the later shard
    assert merged[128].time == 2.0  # untouched


# -- damage tolerance ------------------------------------------------------


def test_truncated_shard_is_skipped_and_removed(tmp_path):
    store = ShardStore(tmp_path)
    key = "cc" * 32
    store.append(key, [_row(64)])
    store.append(key, [_row(128)])
    shards = store.shard_files(key)
    # truncate the first shard mid-file: a torn write survived a crash
    raw = shards[0].read_bytes()
    shards[0].write_bytes(raw[: len(raw) // 2])
    fresh = ShardStore(tmp_path)
    merged = fresh.group(key)
    assert set(merged) == {128}  # intact shard still serves
    assert not shards[0].exists()  # damaged one removed
    assert shards[1].exists()


def test_empty_shard_file_is_skipped_and_removed(tmp_path):
    store = ShardStore(tmp_path)
    key = "dd" * 32
    store.append(key, [_row(64)])
    (path,) = store.shard_files(key)
    path.write_bytes(b"")
    fresh = ShardStore(tmp_path)
    assert fresh.group(key) == {}
    assert not path.exists()


def test_transient_permission_error_leaves_shard_on_disk(
    tmp_path, monkeypatch
):
    """A transient ``PermissionError`` from ``np.load`` (mount hiccup,
    mode race) must skip the shard for this scan, NOT delete valid
    results — only corruption may unlink."""
    import numpy as np

    store = ShardStore(tmp_path)
    key = "f0" * 32
    store.append(key, [_row(64), _row(128)])
    (path,) = store.shard_files(key)

    def denied(*args, **kwargs):
        raise PermissionError(13, "Permission denied (transient)")

    monkeypatch.setattr(np, "load", denied)
    probe = ShardStore(tmp_path)
    assert probe.group(key) == {}  # skipped this scan
    assert path.exists()           # but never unlinked
    monkeypatch.undo()
    # the next scan (fresh store, np.load healthy) hits everything again
    healthy = ShardStore(tmp_path)
    assert set(healthy.group(key)) == {64, 128}


def test_transient_memory_error_leaves_shard_on_disk(tmp_path, monkeypatch):
    import numpy as np

    store = ShardStore(tmp_path)
    key = "f1" * 32
    store.append(key, [_row(64)])
    (path,) = store.shard_files(key)

    def oom(*args, **kwargs):
        raise MemoryError("allocation pressure")

    monkeypatch.setattr(np, "load", oom)
    assert ShardStore(tmp_path).group(key) == {}
    assert path.exists()


def test_unforeseen_load_failure_fails_safe_without_unlinking(
    tmp_path, monkeypatch
):
    """Anything outside the known corruption classes must not destroy
    data either — unlink only on proven damage."""
    import numpy as np

    store = ShardStore(tmp_path)
    key = "f2" * 32
    store.append(key, [_row(64)])
    (path,) = store.shard_files(key)

    class Strange(Exception):
        pass

    monkeypatch.setattr(
        np, "load", lambda *a, **k: (_ for _ in ()).throw(Strange("?"))
    )
    assert ShardStore(tmp_path).group(key) == {}
    assert path.exists()


def test_wrong_schema_shard_is_removed(tmp_path):
    """A parseable npz missing the shard members is corruption (wrong
    schema), and corruption is still unlinked."""
    import numpy as np

    store = ShardStore(tmp_path)
    key = "f3" * 32
    store.append(key, [_row(64)])
    (path,) = store.shard_files(key)
    with open(path, "wb") as fh:
        np.savez(fh, wrong_member=np.zeros(3))
    fresh = ShardStore(tmp_path)
    assert fresh.group(key) == {}
    assert not path.exists()


def test_stray_tmp_file_is_never_read_as_a_shard(tmp_path):
    """A crash between mkstemp and os.replace leaves a ``*.tmp`` the
    readers must ignore (it does not match the shard glob)."""
    store = ShardStore(tmp_path)
    key = "ee" * 32
    store.append(key, [_row(64)])
    group_dir = store.shard_files(key)[0].parent
    (group_dir / f"{key}.garbage.tmp").write_bytes(b"half a shard")
    fresh = ShardStore(tmp_path)
    assert set(fresh.group(key)) == {64}
    assert fresh.shard_count() == 1


def test_round_trip_is_bit_identical_including_samples(tmp_path):
    store = ShardStore(tmp_path)
    key = column_key(POINTS[0])
    results = run_sweep_column(POINTS)
    store.append(key, results)
    back = ShardStore(tmp_path).group(key)
    for r in results:
        got = back[r.msg_bytes]
        assert got == r
        assert got.samples == r.samples  # exact floats, not approx


def test_ragged_sample_counts_pad_and_unpad_exactly(tmp_path):
    store = ShardStore(tmp_path)
    key = "ff" * 32
    rows = [
        MicrobenchResult(
            "L", "allreduce", 2, 2, 2 ** (6 + i), time=float(i),
            samples=tuple(float(j) / 3 for j in range(1 + 2 * i)),
            internode_messages=i,
        )
        for i in range(4)
    ]
    store.append(key, rows)
    back = ShardStore(tmp_path).group(key)
    for r in rows:
        assert back[r.msg_bytes].samples == r.samples


# -- migration: pre-1.4.0 JSON trees -> legacy shards ----------------------


def test_migrate_point_and_column_json_round_trip_bit_identical(tmp_path):
    results = run_sweep_column(POINTS)
    # a legacy tree holding one per-point file and one column document
    _write_json_point(tmp_path, POINTS[0], results[0])
    _write_json_column(tmp_path, POINTS[1:], results[1:])
    counts = migrate(tmp_path)
    assert counts["point_files"] == 1
    assert counts["column_files"] == 1
    assert counts["entries"] == len(POINTS)
    # migrated rows land in legacy shards bit-identically, keyed by the
    # JSON filename (the legacy key)
    legacy = ShardStore(tmp_path / "legacy")
    pt_key = cache_key(POINTS[0], LEGACY_EPOCH)
    col_key = column_key(POINTS[0], LEGACY_EPOCH)
    assert legacy.group(pt_key)[POINTS[0].msg_bytes] == results[0]
    col = legacy.group(col_key)
    for p, r in zip(POINTS[1:], results[1:]):
        got = col[p.msg_bytes]
        assert got == r
        assert got.samples == r.samples


def test_migrate_is_idempotent(tmp_path):
    results = run_sweep_column(POINTS)
    _write_json_column(tmp_path, POINTS, results)
    first = migrate(tmp_path)
    again = migrate(tmp_path)
    assert first["entries"] == len(POINTS)
    assert again["entries"] == 0
    assert again["skipped_entries"] == len(POINTS)
    legacy = ShardStore(tmp_path / "legacy")
    assert legacy.entry_count() == len(POINTS)


def test_migrate_purge_json_removes_ingested_files(tmp_path):
    results = run_sweep_column(POINTS)
    _write_json_column(tmp_path, POINTS, results)
    _write_json_point(tmp_path, POINTS[0], results[0])
    counts = migrate(tmp_path, purge_json=True)
    assert counts["purged_files"] == 2
    assert not list(tmp_path.glob("columns/*/*.json"))
    assert not [
        p for p in tmp_path.glob("*/*.json") if p.parent.name != "legacy"
    ]
    assert ShardStore(tmp_path / "legacy").entry_count() == len(POINTS) + 1


def test_migrate_skips_corrupt_files(tmp_path):
    path = _write_json_point(
        tmp_path, POINTS[0], run_sweep_column(POINTS[:1])[0]
    )
    bad = path.parent / ("0" * 64 + ".json")
    bad.write_text("{ not json")
    counts = migrate(tmp_path)
    assert counts["corrupt_files"] == 1
    assert counts["point_files"] == 1


def test_migrate_ignores_shard_and_legacy_directories(tmp_path):
    cache = ResultCache(tmp_path)
    results = run_sweep_column(POINTS)
    cache.put_many(POINTS, results)
    counts = migrate(tmp_path)
    assert counts == {
        "point_files": 0, "column_files": 0, "entries": 0,
        "skipped_entries": 0, "corrupt_files": 0, "purged_files": 0,
    }


def test_legacy_json_and_migrated_shards_no_longer_hit(tmp_path):
    """The scheduled post-1.4.0 removal: neither a raw pre-1.4.0 JSON
    tree nor its migrated legacy shards are consulted by lookups."""
    results = run_sweep_column(POINTS)
    _write_json_column(tmp_path, POINTS[:3], results[:3])
    _write_json_point(tmp_path, POINTS[3], results[3])
    cache = ResultCache(tmp_path)
    assert cache.get_many(POINTS) == [None] * len(POINTS)
    assert cache.misses == len(POINTS)
    migrate(tmp_path)
    fresh = ResultCache(tmp_path)
    assert fresh.get_many(POINTS) == [None] * len(POINTS)
    assert "legacy_hits" not in fresh.stats()


def test_legacy_epoch_never_aliases_current_epoch():
    point = POINTS[0]
    assert cache_key(point) != cache_key(point, LEGACY_EPOCH)
    assert column_key(point) != column_key(point, LEGACY_EPOCH)
    assert CACHE_EPOCH != LEGACY_EPOCH


def test_migrate_cli_prints_counts(tmp_path, capsys):
    results = run_sweep_column(POINTS)
    _write_json_column(tmp_path, POINTS, results)
    rc = cache_main(["migrate", "--root", str(tmp_path)])
    out = capsys.readouterr().out
    assert rc == 0
    assert "1 column files" in out
    assert f"{len(POINTS)} new entries" in out
    rc = cache_main(["stats", "--root", str(tmp_path)])
    out = capsys.readouterr().out
    assert rc == 0
    assert "legacy entries" in out

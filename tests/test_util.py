"""Tests for unit parsing/formatting and integer math helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.util import (
    KB,
    MB,
    ceil_div,
    fmt_rate,
    fmt_size,
    fmt_time,
    ilog,
    is_power_of,
    parse_size,
)


class TestParseSize:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("16", 16),
            ("16B", 16),
            ("1kB", 1024),
            ("64kb", 64 * KB),
            ("1 MB", MB),
            ("2MiB", 2 * MB),
            ("512 kB", 512 * KB),
            (128, 128),
        ],
    )
    def test_valid(self, text, expected):
        assert parse_size(text) == expected

    @pytest.mark.parametrize("text", ["", "abc", "12 XB", "-5"])
    def test_invalid(self, text):
        with pytest.raises(ValueError):
            parse_size(text)

    def test_negative_int(self):
        with pytest.raises(ValueError):
            parse_size(-1)

    def test_fractional_bytes_rejected(self):
        with pytest.raises(ValueError):
            parse_size("0.3B")

    @given(st.integers(0, 10**12))
    def test_roundtrip_through_fmt(self, n):
        assert parse_size(fmt_size(n)) == n


class TestFmt:
    def test_fmt_size(self):
        assert fmt_size(512) == "512B"
        assert fmt_size(64 * KB) == "64kB"
        assert fmt_size(3 * MB) == "3MB"
        assert fmt_size(KB + 1) == "1025B"

    def test_fmt_time(self):
        assert fmt_time(0) == "0s"
        assert fmt_time(1.5) == "1.500s"
        assert fmt_time(2e-3) == "2.000ms"
        assert fmt_time(3.5e-6) == "3.500us"
        assert fmt_time(5e-9) == "5.0ns"

    def test_fmt_rate(self):
        assert fmt_rate(97e6) == "97.00M/s"
        assert fmt_rate(1.5e9) == "1.50G/s"
        assert fmt_rate(250.0) == "250.00/s"
        assert fmt_rate(2500.0) == "2.50k/s"


class TestIntMath:
    @pytest.mark.parametrize(
        "a,b,expected", [(0, 3, 0), (1, 3, 1), (3, 3, 1), (4, 3, 2), (9, 3, 3)]
    )
    def test_ceil_div(self, a, b, expected):
        assert ceil_div(a, b) == expected

    def test_ceil_div_rejects_bad_args(self):
        with pytest.raises(ValueError):
            ceil_div(1, 0)
        with pytest.raises(ValueError):
            ceil_div(-1, 2)

    @given(st.integers(0, 10**9), st.integers(1, 10**6))
    def test_ceil_div_matches_float(self, a, b):
        import math

        assert ceil_div(a, b) == math.ceil(a / b)

    @pytest.mark.parametrize(
        "base,n,expected", [(2, 1, 0), (2, 2, 1), (2, 7, 2), (19, 361, 2), (19, 360, 1)]
    )
    def test_ilog(self, base, n, expected):
        assert ilog(base, n) == expected

    @given(st.integers(2, 50), st.integers(1, 10**12))
    def test_ilog_definition(self, base, n):
        k = ilog(base, n)
        assert base**k <= n < base ** (k + 1)

    def test_is_power_of(self):
        assert is_power_of(2, 8)
        assert is_power_of(19, 1)
        assert is_power_of(19, 19 * 19)
        assert not is_power_of(19, 38)
        assert not is_power_of(2, 0)

    @given(st.integers(2, 30), st.integers(0, 6))
    def test_powers_are_powers(self, base, k):
        assert is_power_of(base, base**k)

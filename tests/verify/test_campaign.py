"""Tests for the differential verification engine (repro.verify)."""

import numpy as np
import pytest

from repro.mpi.datatypes import PROD, SUM
from repro.verify import ENTRIES, build_case, repro_command, run_point
from repro.verify import oracles
from repro.verify.__main__ import main as verify_main


class TestOracles:
    def test_reduce_wraps_in_dtype(self):
        # uint8 PROD must wrap mod 256, exactly like sequential in-place
        # accumulation in the runtime
        inputs = [np.full(4, 7, dtype=np.uint8) for _ in range(4)]
        out = oracles.allreduce(inputs, PROD)[0]
        assert out.dtype == np.uint8
        assert np.all(out == (7**4) % 256)

    def test_alltoall_is_block_transpose(self):
        size, count = 3, 2
        inputs = [
            np.arange(size * count, dtype=np.int32) + 100 * r
            for r in range(size)
        ]
        outs = oracles.alltoall(inputs, count)
        for i in range(size):
            for j in range(size):
                block = outs[i][j * count : (j + 1) * count]
                assert np.array_equal(
                    block, inputs[j][i * count : (i + 1) * count]
                )

    def test_gatherv_places_blocks_at_displs(self):
        inputs = [np.full(c, i + 1, dtype=np.uint8) for i, c in enumerate([2, 0, 3])]
        outs = oracles.gatherv(inputs, [2, 0, 3], [1, 4, 5], root=0, total=9)
        assert list(outs[0]) == [0, 1, 1, 0, 0, 3, 3, 3, 0]
        assert outs[1] is None and outs[2] is None

    def test_payloads_match_dtype_and_shape_strict(self):
        a = np.zeros(4, dtype=np.int32)
        assert not oracles.payloads_match(a, a.astype(np.int64))
        assert not oracles.payloads_match(a, np.zeros(5, dtype=np.int32))
        assert oracles.payloads_match(a, a.copy())

    def test_payloads_match_float_tolerance(self):
        a = np.array([1.0, 2.0])
        b = a * (1 + 1e-12)
        assert oracles.payloads_match(a, b)
        assert not oracles.payloads_match(a, a + 1.0)

    def test_scatter_blocks(self):
        root_input = np.arange(6, dtype=np.int64)
        outs = oracles.scatter(root_input, 3, 2)
        assert [list(o) for o in outs] == [[0, 1], [2, 3], [4, 5]]


class TestCaseSpace:
    def test_every_surface_kind_registered(self):
        kinds = {e.kind for e in ENTRIES}
        assert kinds == {"library", "flat", "vector", "schedule"}

    def test_registry_covers_all_libraries_and_collectives(self):
        lib_entries = [e for e in ENTRIES if e.kind == "library"]
        assert len({e.algo for e in lib_entries}) == 6
        assert len({e.collective for e in lib_entries}) == 8

    def test_build_case_deterministic(self):
        for index in (0, 17, 90, 150):
            assert build_case(3, index) == build_case(3, index)

    def test_different_seeds_differ_somewhere(self):
        cases_a = [build_case(0, i) for i in range(30)]
        cases_b = [build_case(1, i) for i in range(30)]
        assert cases_a != cases_b

    def test_rotations_give_multiple_dtypes_and_mechanisms(self):
        n = len(ENTRIES)
        # three visits to entry 0 (a library allgather surface)
        cases = [build_case(0, 0 + k * n) for k in range(3)]
        assert len({c.dtype_name for c in cases}) >= 2
        assert len({c.mechanism for c in cases}) >= 2

    def test_repro_command_format(self):
        cmd = repro_command(5, 42)
        assert "--seed 5" in cmd and "--point 42" in cmd
        assert "repro.verify" in cmd


class TestDifferentialEngine:
    def test_single_point_runs_clean(self):
        result = run_point(0, 1)
        assert result.ok, result.failures

    def test_detects_corrupted_oracle(self, monkeypatch):
        # proves the engine compares real element data, not just sizes
        orig = oracles.allgather

        def corrupted(inputs):
            outs = [a.copy() for a in orig(inputs)]
            for a in outs:
                if a.size:
                    a[0] += 1
            return outs

        monkeypatch.setattr(oracles, "allgather", corrupted)
        result = run_point(0, 1)  # entry 1: PiP-MColl allgather
        assert not result.ok
        assert any("mismatch" in f for f in result.failures)

    @pytest.mark.parametrize("kind", ["library", "flat", "vector", "schedule"])
    def test_one_point_per_surface_kind(self, kind):
        index = next(
            i for i, e in enumerate(ENTRIES) if e.kind == kind
        )
        result = run_point(0, index)
        assert result.ok, result.failures

    def test_small_campaign_clean(self, capsys):
        # one pass over a slice of the case space through the real CLI
        rc = verify_main(["--seed", "0", "--points", "40"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "40 points, 0 failed" in out


def test_reduce_oracle_matches_runtime_accumulation_order():
    """The oracle's stacked reduce equals sequential in-place accumulate
    for integer dtypes (bit-exact wrap semantics)."""
    rng = np.random.default_rng(7)
    inputs = [rng.integers(0, 256, 16, dtype=np.uint8) for _ in range(5)]
    acc = inputs[0].copy()
    for a in inputs[1:]:
        np.multiply(acc, a, out=acc)
    assert np.array_equal(oracles.allreduce(inputs, PROD)[0], acc)
    acc = inputs[0].copy()
    for a in inputs[1:]:
        np.add(acc, a, out=acc)
    assert np.array_equal(oracles.allreduce(inputs, SUM)[0], acc)

"""Tests for the NIC and memory hardware models."""

import pytest

from repro.hw import ClusterHW, Topology, tiny_test_machine
from repro.sim.engine import Engine


@pytest.fixture()
def hw():
    return ClusterHW(Topology(nodes=2, ppn=4), tiny_test_machine())


class TestNic:
    def test_single_small_message_latency(self, hw):
        p = hw.params
        nic0, nic1 = hw.nics[0], hw.nics[1]
        nbytes = 16
        inject_done, arrival = nic0.transfer(0.0, 0, nic1, nbytes)
        # injection limited by per-process message gap (16B/1GB/s < 1us gap)
        assert inject_done == pytest.approx(1.0 / p.proc_msg_rate)
        # cut-through: the slow stage (injection gap) + wire latency
        assert arrival == pytest.approx(inject_done + p.wire_latency)

    def test_large_message_bandwidth_bound(self, hw):
        p = hw.params
        nic0, nic1 = hw.nics[0], hw.nics[1]
        nbytes = 10_000_000
        inject_done, arrival = nic0.transfer(0.0, 0, nic1, nbytes)
        assert inject_done == pytest.approx(nbytes / p.proc_bandwidth)
        # fully pipelined: paced by the slowest stage, not the stage sum
        assert arrival == pytest.approx(inject_done + p.wire_latency)

    def test_dma_transfer_uses_dma_bandwidth(self, hw):
        p = hw.params
        nic0, nic1 = hw.nics[0], hw.nics[1]
        nbytes = 10_000_000
        inject_done, arrival = nic0.transfer(0.0, 0, nic1, nbytes, dma=True)
        assert inject_done == pytest.approx(nbytes / p.proc_dma_bandwidth)
        assert arrival == pytest.approx(inject_done + p.wire_latency)
        # DMA is strictly faster than the eager copy path for big payloads
        _, eager_arrival = nic0.transfer(arrival, 1, nic1, nbytes)
        assert eager_arrival - arrival > arrival

    def test_multiple_senders_scale_message_rate(self, hw):
        """The Fig. 1 effect: k senders sustain ~k x one sender's rate."""
        p = hw.params
        msgs = 100

        def last_arrival(num_senders):
            cluster = ClusterHW(Topology(nodes=2, ppn=4), p)
            a, b = cluster.nics[0], cluster.nics[1]
            t = 0.0
            for i in range(msgs):
                _, arr = a.transfer(0.0, i % num_senders, b, 16)
                t = max(t, arr)
            return t

        t1, t4 = last_arrival(1), last_arrival(4)
        # 4 senders inject in parallel pipelines: ~4x faster until NIC cap
        assert t4 < t1 / 3

    def test_nic_message_rate_ceiling(self, hw):
        """Aggregate rate never exceeds the NIC ceiling however many senders."""
        p = hw.params
        msgs = 200
        cluster = ClusterHW(Topology(nodes=2, ppn=4), p)
        a, b = cluster.nics[0], cluster.nics[1]
        last = 0.0
        for i in range(msgs):
            _, arr = a.transfer(0.0, i % 4, b, 16)
            last = max(last, arr)
        min_time = msgs / p.nic_msg_rate
        assert last >= min_time

    def test_incast_serialises_at_receiver(self, hw):
        """Two full-bandwidth streams into one node take ~2x one stream."""
        p = hw.params
        nbytes = 10_000_000
        cluster = ClusterHW(Topology(nodes=3, ppn=1), p)
        _, arr1 = cluster.nics[0].transfer(0.0, 0, cluster.nics[2], nbytes)
        _, arr2 = cluster.nics[1].transfer(0.0, 0, cluster.nics[2], nbytes)
        wire = nbytes / p.nic_bandwidth
        assert max(arr1, arr2) >= 2 * wire

    def test_accounting_and_reset(self, hw):
        nic0, nic1 = hw.nics[0], hw.nics[1]
        nic0.transfer(0.0, 0, nic1, 100)
        assert nic0.messages_sent == 1
        assert nic0.bytes_sent == 100
        nic0.reset()
        assert nic0.messages_sent == 0


class TestMemory:
    def test_copy_blocks_for_service_time(self, hw):
        from repro.sim.engine import Engine

        eng = hw.engine
        mem = hw.memories[0]
        p = hw.params

        def body():
            yield from mem.copy(1000)

        proc = eng.spawn(body())
        eng.run()
        assert eng.now == pytest.approx(1000 / p.core_copy_bw + p.copy_latency)
        assert mem.bytes_copied == 1000

    def test_reduce_uses_reduce_bandwidth(self, hw):
        eng = hw.engine
        mem = hw.memories[0]
        p = hw.params

        def body():
            yield from mem.reduce(4096)

        eng.spawn(body())
        eng.run()
        assert eng.now == pytest.approx(4096 / p.reduce_bw + p.copy_latency)

    def test_zero_byte_copy_costs_only_latency(self, hw):
        eng = hw.engine
        mem = hw.memories[0]

        def body():
            yield from mem.copy(0)

        eng.spawn(body())
        eng.run()
        assert eng.now == pytest.approx(hw.params.copy_latency)

    def test_lane_contention_queues_excess_copies(self):
        params = tiny_test_machine()  # 10 lanes
        hw = ClusterHW(Topology(nodes=1, ppn=1), params)
        mem = hw.memories[0]
        nbytes = 10_000_000
        service = nbytes / params.core_copy_bw

        def body():
            yield from mem.copy(nbytes)

        for _ in range(11):  # one more than the lane count
            hw.engine.spawn(body())
        hw.engine.run()
        # 10 run in parallel, the 11th queues behind them
        assert hw.engine.now == pytest.approx(2 * service + params.copy_latency)

    def test_fault_cost_charged_once_per_region(self, hw):
        mem = hw.memories[0]
        p = hw.params
        cost = mem.fault_cost(("rank1", 42), 2 * p.page_size)
        assert cost == pytest.approx(2 * p.page_fault_time)
        assert mem.fault_cost(("rank1", 42), 2 * p.page_size) == 0.0
        # different consumer faults independently
        assert mem.fault_cost(("rank2", 42), p.page_size) > 0

    def test_fault_cost_rounds_pages_up(self, hw):
        mem = hw.memories[0]
        p = hw.params
        assert mem.fault_cost("k", 1) == pytest.approx(p.page_fault_time)

    def test_forget_warm_state(self, hw):
        mem = hw.memories[0]
        mem.fault_cost("k", 100)
        mem.forget_warm_state()
        assert mem.fault_cost("k", 100) > 0

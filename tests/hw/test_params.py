"""Tests for machine parameter presets and validation."""

import dataclasses

import pytest

from repro.hw import bebop_broadwell, tiny_test_machine


def test_presets_validate():
    bebop_broadwell().validate()
    tiny_test_machine().validate()


def test_bebop_matches_paper_headline_numbers():
    p = bebop_broadwell()
    # §IV-A: OPA with 97 M msg/s and 100 Gbps
    assert p.nic_msg_rate == 97e6
    assert p.nic_bandwidth == 12.5e9


def test_derived_copy_lanes():
    p = tiny_test_machine()
    assert p.derived_copy_lanes() == 10


def test_with_overrides_returns_new_instance():
    p = tiny_test_machine()
    q = p.with_overrides(wire_latency=5e-6)
    assert q.wire_latency == 5e-6
    assert p.wire_latency == 1e-6


def test_frozen():
    p = tiny_test_machine()
    with pytest.raises(dataclasses.FrozenInstanceError):
        p.wire_latency = 0.0


@pytest.mark.parametrize(
    "field,value",
    [
        ("nic_bandwidth", -1.0),
        ("wire_latency", 0.0),
        ("send_overhead", -1e-6),
        ("page_size", 0),
        ("eager_threshold", -1),
    ],
)
def test_validate_rejects_bad_values(field, value):
    p = tiny_test_machine().with_overrides(**{field: value})
    with pytest.raises(ValueError):
        p.validate()


def test_validate_rejects_inconsistent_rates():
    p = tiny_test_machine().with_overrides(proc_msg_rate=1e9)
    with pytest.raises(ValueError):
        p.validate()
    p = tiny_test_machine().with_overrides(core_copy_bw=1e12)
    with pytest.raises(ValueError):
        p.validate()

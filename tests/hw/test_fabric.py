"""Tests for the optional oversubscribed-fabric model.

The paper assumes a flat (full-bisection) fabric; ``fabric_bandwidth``
makes that assumption a knob: when set, all internode traffic shares one
core-bandwidth server, modelling a fat tree's oversubscribed uplinks.
"""

import pytest

from repro.bench.microbench import run_point
from repro.hw import ClusterHW, Topology, tiny_test_machine
from repro.util.units import KB


def fabric_params(bandwidth):
    return tiny_test_machine().with_overrides(fabric_bandwidth=bandwidth)


class TestFabricModel:
    def test_default_is_full_bisection(self):
        hw = ClusterHW(Topology(2, 1), tiny_test_machine())
        assert hw.fabric is None

    def test_fabric_server_created_when_set(self):
        hw = ClusterHW(Topology(2, 1), fabric_params(5e9))
        assert hw.fabric is not None
        assert hw.nics[0].fabric is hw.fabric

    def test_invalid_bandwidth_rejected(self):
        with pytest.raises(ValueError, match="fabric_bandwidth"):
            fabric_params(-1.0).validate()

    def test_single_transfer_unaffected_by_wide_fabric(self):
        """A fabric faster than the NIC changes nothing for one message."""
        base = ClusterHW(Topology(2, 1), tiny_test_machine())
        wide = ClusterHW(Topology(2, 1), fabric_params(1e12))
        nbytes = 1 << 20
        _, a0 = base.nics[0].transfer(0.0, 0, base.nics[1], nbytes)
        _, a1 = wide.nics[0].transfer(0.0, 0, wide.nics[1], nbytes)
        assert a1 == pytest.approx(a0, rel=1e-9)

    def test_narrow_fabric_bounds_single_stream(self):
        """A fabric slower than the NIC paces a single transfer."""
        p = fabric_params(1e9)  # 10x slower than the NIC
        hw = ClusterHW(Topology(2, 1), p)
        nbytes = 10_000_000
        _, arrival = hw.nics[0].transfer(0.0, 0, hw.nics[1], nbytes, dma=True)
        assert arrival >= nbytes / 1e9

    def test_concurrent_streams_share_the_fabric(self):
        """Disjoint node pairs contend on an oversubscribed core."""
        p = fabric_params(tiny_test_machine().nic_bandwidth)  # 1x one NIC
        hw = ClusterHW(Topology(4, 1), p)
        nbytes = 10_000_000
        _, a1 = hw.nics[0].transfer(0.0, 0, hw.nics[1], nbytes, dma=True)
        _, a2 = hw.nics[2].transfer(0.0, 0, hw.nics[3], nbytes, dma=True)
        # with full bisection these would finish together; here the second
        # stream queues behind the first on the core
        assert max(a1, a2) >= 2 * nbytes / p.nic_bandwidth

    def test_reset_clears_fabric_queue(self):
        hw = ClusterHW(Topology(2, 1), fabric_params(1e9))
        hw.nics[0].transfer(0.0, 0, hw.nics[1], 1 << 20)
        hw.reset_hardware()
        assert hw.fabric.next_free() == 0.0


class TestFabricCollectiveImpact:
    def test_oversubscription_slows_allgather(self):
        """An oversubscribed core measurably slows a bandwidth-bound
        allgather; latency-bound small collectives barely move.

        With the tiny test machine, 8 nodes x 2 ppn rendezvous-DMA at
        2 GB/s per process demand up to 32 GB/s of core bandwidth; a core
        capped at a quarter NIC (2.5 GB/s) must bite."""
        full = tiny_test_machine()
        over = fabric_params(full.nic_bandwidth / 4)

        big = 256 * KB  # above the eager threshold: rendezvous DMA
        t_full = run_point("PiP-MColl", "allgather", 8, 2, big, params=full).time
        t_over = run_point("PiP-MColl", "allgather", 8, 2, big, params=over).time
        assert t_over > 1.3 * t_full

        small = 16
        s_full = run_point("PiP-MColl", "allgather", 8, 2, small, params=full).time
        s_over = run_point("PiP-MColl", "allgather", 8, 2, small, params=over).time
        assert s_over < 1.2 * s_full

"""Tests for cluster topology / rank mapping."""

import pytest
from hypothesis import given, strategies as st

from repro.hw import Topology


def test_basic_mapping():
    topo = Topology(nodes=4, ppn=3)
    assert topo.world_size == 12
    assert topo.node_of(0) == 0
    assert topo.node_of(11) == 3
    assert topo.local_rank_of(7) == 1
    assert topo.rank_of(2, 1) == 7
    assert topo.locate(7) == (2, 1)


def test_same_node():
    topo = Topology(nodes=2, ppn=4)
    assert topo.same_node(0, 3)
    assert not topo.same_node(3, 4)


def test_node_ranks_block_mapping():
    topo = Topology(nodes=3, ppn=2)
    assert list(topo.node_ranks(1)) == [2, 3]


def test_bounds_checking():
    topo = Topology(nodes=2, ppn=2)
    with pytest.raises(ValueError):
        topo.node_of(4)
    with pytest.raises(ValueError):
        topo.node_of(-1)
    with pytest.raises(ValueError):
        topo.rank_of(2, 0)
    with pytest.raises(ValueError):
        topo.rank_of(0, 2)
    with pytest.raises(ValueError):
        topo.node_ranks(5)


def test_degenerate_shapes_rejected():
    with pytest.raises(ValueError):
        Topology(nodes=0, ppn=1)
    with pytest.raises(ValueError):
        Topology(nodes=1, ppn=0)


@given(st.integers(1, 40), st.integers(1, 40))
def test_mapping_roundtrip(nodes, ppn):
    topo = Topology(nodes=nodes, ppn=ppn)
    for rank in topo.ranks():
        node, local = topo.locate(rank)
        assert topo.rank_of(node, local) == rank
        assert rank in topo.node_ranks(node)


def test_str():
    assert str(Topology(128, 18)) == "128x18"

"""Every library implements the full seven-collective interface correctly,
including back-to-back mixed sequences (the MPI ordering semantics)."""

import numpy as np
import pytest

from repro.baselines import library_names, make_library
from repro.hw import Topology, tiny_test_machine
from repro.mpi import DOUBLE, SUM, Buffer

LIBS = library_names(include_variants=True)
SHAPE = (3, 2)


def lib_world(lib_name, shape=SHAPE):
    lib = make_library(lib_name)
    return lib, lib.make_world(Topology(*shape), tiny_test_machine())


@pytest.mark.parametrize("lib_name", LIBS)
class TestRemainingCollectives:
    def test_bcast(self, lib_name):
        lib, world = lib_world(lib_name)
        payload = np.arange(9, dtype=np.float64)
        bufs = [
            Buffer.real(payload.copy()) if r == 0 else Buffer.alloc(DOUBLE, 9)
            for r in range(world.world_size)
        ]

        def body(ctx):
            yield from lib.bcast(ctx, bufs[ctx.rank], root=0)

        world.run(body)
        for b in bufs:
            assert np.array_equal(b.array(), payload)

    def test_gather(self, lib_name):
        lib, world = lib_world(lib_name)
        size = world.world_size
        rng = np.random.default_rng(1)
        inputs = [Buffer.real(rng.random(3)) for _ in range(size)]
        recvbuf = Buffer.alloc(DOUBLE, size * 3)

        def body(ctx):
            rb = recvbuf if ctx.rank == 0 else None
            yield from lib.gather(ctx, inputs[ctx.rank], rb, root=0)

        world.run(body)
        expected = np.concatenate([b.array() for b in inputs])
        assert np.array_equal(recvbuf.array(), expected)

    def test_reduce(self, lib_name):
        lib, world = lib_world(lib_name)
        size = world.world_size
        rng = np.random.default_rng(2)
        inputs = [Buffer.real(rng.random(6)) for _ in range(size)]
        recvbuf = Buffer.alloc(DOUBLE, 6)

        def body(ctx):
            rb = recvbuf if ctx.rank == 0 else None
            yield from lib.reduce(ctx, inputs[ctx.rank], rb, SUM, root=0)

        world.run(body)
        expected = np.sum([b.array() for b in inputs], axis=0)
        np.testing.assert_allclose(recvbuf.array(), expected, rtol=1e-12)

    def test_barrier(self, lib_name):
        lib, world = lib_world(lib_name)
        enter, exit_ = {}, {}

        def body(ctx):
            yield from ctx.compute(ctx.rank * 1e-5)
            enter[ctx.rank] = world.engine.now
            yield from lib.barrier(ctx)
            exit_[ctx.rank] = world.engine.now

        world.run(body)
        assert min(exit_.values()) >= max(enter.values())

    def test_mixed_collective_sequence(self, lib_name):
        """bcast -> alltoall -> allreduce -> gather back-to-back: exercises
        tag scoping and ordering across different collective kinds."""
        lib, world = lib_world(lib_name)
        size = world.world_size
        rng = np.random.default_rng(3)

        seed = np.arange(4, dtype=np.float64)
        bc = [
            Buffer.real(seed.copy()) if r == 0 else Buffer.alloc(DOUBLE, 4)
            for r in range(size)
        ]
        a2a_in = [Buffer.real(rng.random(size)) for _ in range(size)]
        a2a_out = [Buffer.alloc(DOUBLE, size) for _ in range(size)]
        ar_out = [Buffer.alloc(DOUBLE, size) for _ in range(size)]
        g_out = Buffer.alloc(DOUBLE, size * 4)

        def body(ctx):
            yield from lib.bcast(ctx, bc[ctx.rank], root=0)
            yield from lib.alltoall(ctx, a2a_in[ctx.rank], a2a_out[ctx.rank])
            yield from lib.allreduce(ctx, a2a_out[ctx.rank], ar_out[ctx.rank], SUM)
            rb = g_out if ctx.rank == 0 else None
            yield from lib.gather(ctx, bc[ctx.rank], rb, root=0)

        world.run(body)
        # bcast delivered
        for b in bc:
            assert np.array_equal(b.array(), seed)
        # alltoall transpose
        matrix = np.array([b.array() for b in a2a_in])
        for r, out in enumerate(a2a_out):
            assert np.array_equal(out.array(), matrix[:, r])
        # allreduce over the transposed rows = column sums of matrix rows
        expected_ar = np.sum([o.array() for o in a2a_out], axis=0)
        for out in ar_out:
            np.testing.assert_allclose(out.array(), expected_ar, rtol=1e-12)
        # gather of the broadcast seeds
        assert np.array_equal(g_out.array(), np.tile(seed, size))

"""Tests for the two-level (leader-based) collective composition."""

import numpy as np
import pytest

from repro.baselines import hier_allgather, hier_allreduce, hier_scatter
from repro.baselines.hierarchical import leader_group, node_group
from repro.mpi import DOUBLE, SUM, Buffer
from repro.mpi.collectives import (
    allgather_ring,
    allreduce_recursive_doubling,
    scatter_binomial,
)
from repro.shmem import PosixShmem

from tests.helpers import make_world


class TestGroupHelpers:
    def test_node_group_contains_my_node(self):
        world = make_world(3, 4)
        ctx = world.ctx(6)
        g = node_group(ctx)
        assert list(g.ranks) == [4, 5, 6, 7]

    def test_leader_group_is_local_roots(self):
        world = make_world(3, 4)
        g = leader_group(world.ctx(0))
        assert list(g.ranks) == [0, 4, 8]


class TestHierScatter:
    @pytest.mark.parametrize("shape", [(2, 3), (4, 2), (3, 4)])
    def test_leader_root(self, shape):
        world = make_world(*shape, mechanism=PosixShmem())
        size = world.world_size
        count = 2
        full = np.arange(size * count, dtype=np.float64)
        sendbuf = Buffer.real(full.copy())
        recvs = [Buffer.alloc(DOUBLE, count) for _ in range(size)]

        def body(ctx):
            sb = sendbuf if ctx.rank == 0 else None
            yield from hier_scatter(ctx, sb, recvs[ctx.rank], 0)

        world.run(body)
        for i, r in enumerate(recvs):
            assert np.array_equal(r.array(), full[i * count:(i + 1) * count])

    def test_non_leader_root_relocates(self):
        world = make_world(2, 3, mechanism=PosixShmem())
        size = world.world_size
        root = 4  # node 1, local rank 1 — not a leader
        full = np.arange(size, dtype=np.float64)
        sendbuf = Buffer.real(full.copy())
        recvs = [Buffer.alloc(DOUBLE, 1) for _ in range(size)]

        def body(ctx):
            sb = sendbuf if ctx.rank == root else None
            yield from hier_scatter(ctx, sb, recvs[ctx.rank], root)

        world.run(body)
        for i, r in enumerate(recvs):
            assert r.array()[0] == full[i]


class TestHierAllgatherAllreduce:
    def test_allgather_matches_ground_truth(self):
        world = make_world(3, 2, mechanism=PosixShmem())
        size = world.world_size
        rng = np.random.default_rng(9)
        inputs = [Buffer.real(rng.random(3)) for _ in range(size)]
        outputs = [Buffer.alloc(DOUBLE, size * 3) for _ in range(size)]
        expected = np.concatenate([b.array() for b in inputs])

        def leader_ag(ctx, group, sendbuf, recvbuf):
            yield from allgather_ring(ctx, group, sendbuf, recvbuf)

        def body(ctx):
            yield from hier_allgather(ctx, inputs[ctx.rank], outputs[ctx.rank],
                                      leader_ag)

        world.run(body)
        for out in outputs:
            assert np.array_equal(out.array(), expected)

    def test_allreduce_matches_ground_truth(self):
        world = make_world(4, 3, mechanism=PosixShmem())
        size = world.world_size
        rng = np.random.default_rng(10)
        inputs = [Buffer.real(rng.random(5)) for _ in range(size)]
        outputs = [Buffer.alloc(DOUBLE, 5) for _ in range(size)]
        expected = np.sum([b.array() for b in inputs], axis=0)

        def body(ctx):
            yield from hier_allreduce(
                ctx, inputs[ctx.rank], outputs[ctx.rank], SUM,
                allreduce_recursive_doubling,
            )

        world.run(body)
        for out in outputs:
            np.testing.assert_allclose(out.array(), expected, rtol=1e-12)

    def test_single_node_degenerates(self):
        world = make_world(1, 4, mechanism=PosixShmem())
        inputs = [Buffer.real(np.full(2, float(r))) for r in range(4)]
        outputs = [Buffer.alloc(DOUBLE, 2) for _ in range(4)]

        def body(ctx):
            yield from hier_allreduce(
                ctx, inputs[ctx.rank], outputs[ctx.rank], SUM,
                allreduce_recursive_doubling,
            )

        world.run(body)
        for out in outputs:
            assert np.array_equal(out.array(), np.array([6.0, 6.0]))

"""Every modelled library produces correct collective results."""

import numpy as np
import pytest

from repro.baselines import all_libraries, library_names, make_library
from repro.hw import Topology, tiny_test_machine
from repro.mpi import DOUBLE, SUM, Buffer

SHAPES = [(1, 2), (3, 2), (4, 3), (5, 2)]
LIBS = library_names(include_variants=True)


def lib_world(lib_name, shape):
    lib = make_library(lib_name)
    world = lib.make_world(Topology(*shape), tiny_test_machine())
    return lib, world


class TestRegistry:
    def test_all_names_resolve(self):
        for name in LIBS:
            lib = make_library(name)
            assert lib.name == name

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown library"):
            make_library("LAM/MPI")

    def test_factories_return_fresh_instances(self):
        assert make_library("OpenMPI") is not make_library("OpenMPI")

    def test_paper_lineup(self):
        assert library_names() == [
            "PiP-MColl", "PiP-MPICH", "IntelMPI", "OpenMPI", "MVAPICH2"
        ]
        assert "PiP-MColl-small" in library_names(include_variants=True)

    def test_all_libraries_builds_each(self):
        libs = all_libraries(include_variants=True)
        assert len(libs) == 6


@pytest.mark.parametrize("shape", SHAPES, ids=lambda s: f"{s[0]}x{s[1]}")
@pytest.mark.parametrize("lib_name", LIBS)
class TestLibraryCorrectness:
    def test_scatter(self, lib_name, shape):
        lib, world = lib_world(lib_name, shape)
        size = world.world_size
        count = 3
        full = np.arange(size * count, dtype=np.float64)
        sendbuf = Buffer.real(full.copy())
        recvs = [Buffer.alloc(DOUBLE, count) for _ in range(size)]

        def body(ctx):
            sb = sendbuf if ctx.rank == 0 else None
            yield from lib.scatter(ctx, sb, recvs[ctx.rank], root=0)

        world.run(body)
        for i, r in enumerate(recvs):
            assert np.array_equal(r.array(), full[i * count : (i + 1) * count])

    def test_allgather(self, lib_name, shape):
        lib, world = lib_world(lib_name, shape)
        size = world.world_size
        rng = np.random.default_rng(1)
        inputs = [Buffer.real(rng.random(2)) for _ in range(size)]
        outputs = [Buffer.alloc(DOUBLE, size * 2) for _ in range(size)]
        expected = np.concatenate([b.array() for b in inputs])

        def body(ctx):
            yield from lib.allgather(ctx, inputs[ctx.rank], outputs[ctx.rank])

        world.run(body)
        for out in outputs:
            assert np.array_equal(out.array(), expected)

    def test_allreduce(self, lib_name, shape):
        lib, world = lib_world(lib_name, shape)
        size = world.world_size
        rng = np.random.default_rng(2)
        inputs = [Buffer.real(rng.random(5)) for _ in range(size)]
        outputs = [Buffer.alloc(DOUBLE, 5) for _ in range(size)]
        expected = np.sum([b.array() for b in inputs], axis=0)

        def body(ctx):
            yield from lib.allreduce(ctx, inputs[ctx.rank], outputs[ctx.rank], SUM)

        world.run(body)
        for out in outputs:
            np.testing.assert_allclose(out.array(), expected, rtol=1e-12)

    def test_alltoall(self, lib_name, shape):
        lib, world = lib_world(lib_name, shape)
        size = world.world_size
        rng = np.random.default_rng(6)
        matrix = rng.random((size, size, 2))
        inputs = [Buffer.real(matrix[r].reshape(-1).copy()) for r in range(size)]
        outputs = [Buffer.alloc(DOUBLE, size * 2) for _ in range(size)]

        def body(ctx):
            yield from lib.alltoall(ctx, inputs[ctx.rank], outputs[ctx.rank])

        world.run(body)
        for dst, out in enumerate(outputs):
            expected = np.concatenate(
                [matrix[src, dst] for src in range(size)]
            )
            assert np.array_equal(out.array(), expected), f"rank {dst}"


class TestLibraryCrossSizes:
    """Cross the intra-library algorithm switch points."""

    @pytest.mark.parametrize("lib_name", LIBS)
    @pytest.mark.parametrize("count", [1, 300, 12_000])
    def test_allreduce_across_switchpoints(self, lib_name, count):
        lib, world = lib_world(lib_name, (3, 2))
        size = world.world_size
        rng = np.random.default_rng(3)
        inputs = [Buffer.real(rng.random(count)) for _ in range(size)]
        outputs = [Buffer.alloc(DOUBLE, count) for _ in range(size)]
        expected = np.sum([b.array() for b in inputs], axis=0)

        def body(ctx):
            yield from lib.allreduce(ctx, inputs[ctx.rank], outputs[ctx.rank], SUM)

        world.run(body)
        for out in outputs:
            np.testing.assert_allclose(out.array(), expected, rtol=1e-12)

    @pytest.mark.parametrize("lib_name", LIBS)
    @pytest.mark.parametrize("count", [4, 4_000])
    def test_allgather_across_switchpoints(self, lib_name, count):
        lib, world = lib_world(lib_name, (4, 2))
        size = world.world_size
        rng = np.random.default_rng(4)
        inputs = [Buffer.real(rng.random(count)) for _ in range(size)]
        outputs = [Buffer.alloc(DOUBLE, size * count) for _ in range(size)]
        expected = np.concatenate([b.array() for b in inputs])

        def body(ctx):
            yield from lib.allgather(ctx, inputs[ctx.rank], outputs[ctx.rank])

        world.run(body)
        for out in outputs:
            assert np.array_equal(out.array(), expected)

"""Analytic model tests: §III formula properties and simulator agreement.

Two layers:

1. the closed-form models themselves exhibit the scaling behaviours the
   paper derives (linearity, quadratic blow-up, log rounds);
2. the discrete-event simulator agrees with the models on those
   behaviours (slopes, not absolute constants — the models ignore
   contention by construction).
"""

import numpy as np
import pytest

from repro.bench.microbench import run_point
from repro.hw import bebop_broadwell
from repro.models import (
    HockneyParams,
    allgather_large_time,
    allgather_small_time,
    allreduce_large_time,
    allreduce_small_time,
    scatter_time,
)
from repro.models.formulas import (
    AnalyticParams,
    allgather_refined,
    allreduce_large_refined,
    allreduce_small_refined,
    flat_allgather_refined,
    scatter_refined,
)
from repro.util.units import KB


@pytest.fixture(scope="module")
def h():
    return HockneyParams.from_machine(bebop_broadwell())


class TestHockneyParams:
    def test_derivation_signs(self, h):
        assert h.a_r > 0 and h.a_e > 0
        assert h.b_e < h.b_r  # the fabric streams faster than one core copies
        assert h.gamma > 0

    def test_p2p_time_linear(self, h):
        t1 = h.p2p_time(1000)
        t2 = h.p2p_time(2000)
        assert t2 - t1 == pytest.approx(1000 * h.b_e)

    def test_latency_floor(self, h):
        assert h.p2p_time(0) == pytest.approx(h.a_e)


class TestModelProperties:
    N, P = 128, 18

    def test_scatter_linear_in_cb(self, h):
        """§III-A1: T grows linearly with C_b."""
        t1 = scatter_time(h, 4 * KB, self.N, self.P)
        t2 = scatter_time(h, 8 * KB, self.N, self.P)
        t4 = scatter_time(h, 16 * KB, self.N, self.P)
        assert (t4 - t2) / (t2 - t1) == pytest.approx(2.0, rel=0.05)

    def test_scatter_log_rounds_in_n(self, h):
        """Internode start-up term grows with ceil(log_{P+1} N)."""
        small = 16
        t19 = scatter_time(h, small, 19, self.P)
        t361 = scatter_time(h, small, 361, self.P)
        # one extra round of a_e plus the extra volume
        assert t361 > t19

    def test_allgather_small_quadratic_vs_large_linear(self, h):
        """§III-A2/B1: the small algorithm blows up quadratically in C_b,
        the ring algorithm stays linear — their ratio must diverge."""
        ratio_at = lambda cb: (
            allgather_small_time(h, cb, self.N, self.P)
            / allgather_large_time(h, cb, self.N, self.P)
        )
        assert ratio_at(256 * KB) > ratio_at(4 * KB)

    def test_allreduce_large_beats_small_for_big_cb(self, h):
        cb = 512 * KB
        assert allreduce_large_time(h, cb, self.N, self.P) < allreduce_small_time(
            h, cb, self.N, self.P
        )

    def test_allreduce_small_beats_large_for_tiny_cb(self, h):
        cb = 128
        assert allreduce_small_time(h, cb, self.N, self.P) < allreduce_large_time(
            h, cb, self.N, self.P
        )

    def test_allreduce_small_log_in_n(self, h):
        """§III-A3: node count enters only through ceil(log_{P+1} N)."""
        t_a = allreduce_small_time(h, 128, 19, self.P)
        t_b = allreduce_small_time(h, 128, 361, self.P)
        t_c = allreduce_small_time(h, 128, 6859, self.P)
        # equal increments per extra round
        assert (t_c - t_b) == pytest.approx(t_b - t_a, rel=0.01)

    def test_single_node_degenerates(self, h):
        t = scatter_time(h, 1024, 1, self.P)
        assert t == pytest.approx(h.a_r + self.P * 1024 * h.b_r)


REFINED = (
    scatter_refined,
    allgather_refined,
    allreduce_small_refined,
    allreduce_large_refined,
    flat_allgather_refined,
)


class TestRefinedFormulas:
    """The analytic tier's forms: ufunc vectorization and basic shape.

    Accuracy against the simulator is measured separately
    (``python -m repro.models.calibrate`` / tests/sched/test_analytic.py);
    here we pin the algebraic properties.
    """

    @pytest.fixture(scope="class")
    def ap(self):
        return AnalyticParams.from_machine(bebop_broadwell())

    def test_from_machine_derivation(self, ap):
        machine = bebop_broadwell()
        assert ap.b_dma < ap.b_proc  # rendezvous DMA streams faster
        assert ap.eager == machine.eager_threshold
        assert ap.lanes >= 1
        assert ap.flag > 0 and ap.post > 0

    def test_stream_beta_switches_at_eager_threshold(self, ap):
        assert ap.stream_beta(ap.eager) == ap.b_proc
        assert ap.stream_beta(ap.eager + 1) == ap.b_dma
        both = ap.stream_beta(np.array([ap.eager, ap.eager + 1]))
        assert tuple(both) == (ap.b_proc, ap.b_dma)

    @pytest.mark.parametrize("fn", REFINED, ids=lambda f: f.__name__)
    def test_scalar_equals_vectorized(self, ap, fn):
        sizes = (64.0, 4096.0, 65536.0, 262144.0)
        vec = fn(ap, np.array(sizes), 4, 8)
        for s, v in zip(sizes, vec):
            assert float(fn(ap, s, 4, 8)) == float(v)

    @pytest.mark.parametrize("fn", REFINED, ids=lambda f: f.__name__)
    def test_positive_and_nondecreasing_in_cb(self, ap, fn):
        t = fn(ap, np.array([16.0, 1024.0, 65536.0, 524288.0]), 2, 4)
        assert np.all(t > 0)
        assert np.all(np.diff(t) >= 0)


class TestSimulatorAgreesWithModels:
    """Slope agreement between simulation and the §III analysis."""

    NODES, PPN = 8, 4

    def _sim(self, collective, nbytes):
        return run_point(
            "PiP-MColl", collective, self.NODES, self.PPN, nbytes
        ).time

    def test_scatter_linear_slope(self, h):
        """Doubling C_b roughly doubles both model and simulated time in
        the bandwidth-dominated regime."""
        sim_ratio = self._sim("scatter", 256 * KB) / self._sim("scatter", 128 * KB)
        model_ratio = scatter_time(h, 256 * KB, self.NODES, self.PPN) / scatter_time(
            h, 128 * KB, self.NODES, self.PPN
        )
        assert sim_ratio == pytest.approx(model_ratio, rel=0.25)

    def test_allgather_large_linear_slope(self, h):
        sim_ratio = self._sim("allgather", 512 * KB) / self._sim(
            "allgather", 256 * KB
        )
        model_ratio = allgather_large_time(
            h, 512 * KB, self.NODES, self.PPN
        ) / allgather_large_time(h, 256 * KB, self.NODES, self.PPN)
        assert sim_ratio == pytest.approx(model_ratio, rel=0.25)

    def test_allreduce_switch_agrees_with_models(self, h):
        """The simulator's own large-vs-small crossover lands where the
        models put it: small wins at tiny counts, large wins at big ones."""
        from repro.bench.microbench import run_point as rp

        def variant_time(lib, nbytes):
            return rp(lib, "allreduce", self.NODES, self.PPN, nbytes).time

        tiny, big = 128, 512 * KB
        small_tiny = variant_time("PiP-MColl-small", tiny)
        full_tiny = variant_time("PiP-MColl", tiny)
        assert small_tiny == pytest.approx(full_tiny, rel=1e-6)  # same algo
        small_big = variant_time("PiP-MColl-small", big)
        full_big = variant_time("PiP-MColl", big)
        assert full_big < small_big  # switching paid off, as models predict

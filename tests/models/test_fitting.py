"""The fitted Hockney line recovers the configured machine constants."""

import pytest

from repro.hw import bebop_broadwell, tiny_test_machine
from repro.models.fitting import fit_p2p, measure_p2p_times


class TestMeasure:
    def test_times_monotone_in_size(self):
        points = measure_p2p_times(tiny_test_machine())
        times = [t for _, t in points]
        assert times == sorted(times)

    def test_custom_sizes(self):
        points = measure_p2p_times(tiny_test_machine(), sizes=[128, 256])
        assert [n for n, _ in points] == [128, 256]

    def test_gap_floor_visible_at_tiny_sizes(self):
        """Below the bandwidth knee, time is flat at the injection gap."""
        params = tiny_test_machine()
        pts = dict(measure_p2p_times(params, sizes=[64, 128, 256]))
        assert pts[64] == pytest.approx(pts[256], rel=1e-9)


class TestFit:
    def test_fit_is_a_line(self):
        fit = fit_p2p(tiny_test_machine())
        assert fit.r_squared > 0.9999

    def test_recovers_eager_bandwidth(self):
        """Eager-path slope = per-process copy bandwidth (the slowest
        pipeline stage), for both machine presets."""
        for params in (tiny_test_machine(), bebop_broadwell()):
            fit = fit_p2p(params)
            assert fit.bandwidth == pytest.approx(
                params.proc_bandwidth, rel=0.05
            )

    def test_recovers_latency_floor(self):
        """In the bandwidth-paced regime the intercept is the fixed
        overhead chain (the injection gap is hidden by pipelining)."""
        params = tiny_test_machine()
        fit = fit_p2p(params)
        floor = (
            params.send_overhead + params.wire_latency + params.recv_overhead
        )
        assert fit.alpha == pytest.approx(floor, rel=0.15)

    def test_parameter_changes_show_up_in_the_fit(self):
        slow = tiny_test_machine().with_overrides(
            proc_bandwidth=0.5e9, proc_dma_bandwidth=2e9
        )
        assert fit_p2p(slow).bandwidth == pytest.approx(0.5e9, rel=0.05)
        lat = tiny_test_machine().with_overrides(wire_latency=5e-6)
        assert fit_p2p(lat).alpha > fit_p2p(tiny_test_machine()).alpha + 3e-6

"""Tests for the execution tracer."""

import json

import numpy as np
import pytest

from repro.hw import Topology, tiny_test_machine
from repro.mpi import BYTE, DOUBLE, SUM, Buffer, World
from repro.shmem import PipShmem
from repro.sim import TraceEvent, Tracer


def traced_world(nodes=2, ppn=2):
    tracer = Tracer()
    world = World(
        Topology(nodes, ppn), tiny_test_machine(), mechanism=PipShmem(),
        tracer=tracer,
    )
    return world, tracer


class TestTracer:
    def test_records_span_kinds(self):
        world, tracer = traced_world()
        a = Buffer.real(np.ones(8))
        b = Buffer.alloc(DOUBLE, 8)

        def body(ctx):
            if ctx.rank == 0:
                yield from ctx.compute(1e-6)
                yield from ctx.copy(b, a)
                yield from ctx.reduce_into(b, a, SUM)
                yield from ctx.send(2, a, tag=0)
            elif ctx.rank == 2:
                yield from ctx.recv(0, b, tag=0)

        world.run(body)
        kinds = set(tracer.by_kind())
        assert {"compute", "copy", "reduce", "isend", "wait-send",
                "wait-recv"} <= kinds

    def test_event_fields(self):
        world, tracer = traced_world()

        def body(ctx):
            if ctx.rank == 3:
                yield from ctx.compute(5e-6)

        world.run(body)
        [ev] = [e for e in tracer.events if e.kind == "compute"]
        assert ev.rank == 3
        assert ev.node == 1
        assert ev.duration == pytest.approx(5e-6)

    def test_busy_time_accumulates(self):
        world, tracer = traced_world()

        def body(ctx):
            yield from ctx.compute(1e-6)
            yield from ctx.compute(2e-6)

        world.run(body)
        busy = tracer.busy_time(rank=0)
        assert busy["compute"] == pytest.approx(3e-6)
        total = tracer.busy_time()
        assert total["compute"] == pytest.approx(4 * 3e-6)

    def test_rank_span(self):
        world, tracer = traced_world()

        def body(ctx):
            yield from ctx.compute(1e-6)
            yield from ctx.compute(1e-6)

        world.run(body)
        t0, t1 = tracer.rank_span(1)
        assert t0 == 0.0
        assert t1 == pytest.approx(2e-6)
        with pytest.raises(ValueError):
            tracer.rank_span(99)

    def test_chrome_trace_export(self, tmp_path):
        world, tracer = traced_world()

        def body(ctx):
            yield from ctx.compute(1e-6)

        world.run(body)
        path = tmp_path / "trace.json"
        tracer.dump_chrome_trace(str(path))
        data = json.loads(path.read_text())
        assert data["traceEvents"]
        ev = data["traceEvents"][0]
        assert {"name", "ph", "ts", "dur", "pid", "tid"} <= set(ev)
        assert ev["ph"] == "X"

    def test_event_cap_drops_and_counts(self):
        tracer = Tracer(max_events=2)
        for i in range(5):
            tracer.record(0, 0, "x", 0.0, 1.0)
        assert len(tracer.events) == 2
        assert tracer.dropped == 3

    def test_clear(self):
        tracer = Tracer()
        tracer.record(0, 0, "x", 0.0, 1.0)
        tracer.clear()
        assert tracer.events == []

    def test_summary_mentions_kinds(self):
        tracer = Tracer()
        tracer.record(0, 0, "copy", 0.0, 1e-6)
        tracer.record(0, 0, "copy", 1e-6, 3e-6)
        text = tracer.summary()
        assert "copy" in text
        assert "2 spans" in text

    def test_tracing_off_by_default_has_no_events(self):
        world = World(
            Topology(1, 2), tiny_test_machine(), mechanism=PipShmem()
        )
        assert world.tracer is None

    def test_overlap_visible_in_trace(self):
        """The multi-object scatter's overlapped intranode copy shows up as
        a copy span that starts before the rank's isend wait finishes."""
        from repro.core import mcoll_scatter

        world, tracer = traced_world(nodes=3, ppn=2)
        size = world.world_size
        full = Buffer.real(np.arange(size * 4, dtype=np.float64))
        recvs = [Buffer.alloc(DOUBLE, 4) for _ in range(size)]

        def body(ctx):
            sb = full if ctx.rank == 0 else None
            yield from mcoll_scatter(ctx, sb, recvs[ctx.rank])

        world.run(body)
        root_copies = [
            e for e in tracer.events if e.rank == 0 and e.kind == "copy"
        ]
        root_waits = [
            e for e in tracer.events if e.rank == 0 and e.kind == "wait-send"
        ]
        assert root_copies and root_waits
        # the own-block copy begins before the internode send wait ends
        assert min(c.t0 for c in root_copies) < max(w.t1 for w in root_waits)

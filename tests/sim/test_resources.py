"""Unit and property tests for queueing resources."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.resources import MultiServer, RateLimiter, Server


class TestServer:
    def test_idle_server_starts_immediately(self):
        s = Server()
        assert s.reserve(5.0, 2.0) == (5.0, 7.0)

    def test_back_to_back_requests_queue(self):
        s = Server()
        assert s.reserve(0.0, 10.0) == (0.0, 10.0)
        assert s.reserve(5.0, 1.0) == (10.0, 11.0)

    def test_gap_leaves_server_idle(self):
        s = Server()
        s.reserve(0.0, 1.0)
        assert s.reserve(100.0, 1.0) == (100.0, 101.0)

    def test_negative_service_rejected(self):
        with pytest.raises(ValueError):
            Server().reserve(0.0, -1.0)

    def test_accounting(self):
        s = Server()
        s.reserve(0.0, 2.0)
        s.reserve(0.0, 3.0)
        assert s.busy_time == 5.0
        assert s.served == 2

    @given(st.lists(st.tuples(st.floats(0, 100), st.floats(0, 10)), max_size=50))
    def test_fifo_windows_never_overlap(self, reqs):
        s = Server()
        t = 0.0
        windows = []
        for arrival_gap, service in reqs:
            t += arrival_gap
            windows.append(s.reserve(t, service))
        for (s1, e1), (s2, e2) in zip(windows, windows[1:]):
            assert e1 <= s2 or s2 == e1  # strictly ordered, no overlap
            assert s2 >= s1


class TestMultiServer:
    def test_parallel_up_to_capacity(self):
        ms = MultiServer(2)
        assert ms.reserve(0.0, 10.0) == (0.0, 10.0)
        assert ms.reserve(0.0, 10.0) == (0.0, 10.0)
        # third request queues behind the earliest-free server
        assert ms.reserve(0.0, 1.0) == (10.0, 11.0)

    def test_single_server_degenerates_to_server(self):
        ms, s = MultiServer(1), Server()
        for now, svc in [(0, 5), (1, 2), (8, 1)]:
            assert ms.reserve(now, svc) == s.reserve(now, svc)

    def test_requires_at_least_one_server(self):
        with pytest.raises(ValueError):
            MultiServer(0)

    @given(
        c=st.integers(1, 8),
        reqs=st.lists(st.floats(0.1, 5.0), min_size=1, max_size=40),
    )
    def test_concurrency_never_exceeds_capacity(self, c, reqs):
        ms = MultiServer(c)
        windows = [ms.reserve(0.0, svc) for svc in reqs]
        # at any window start, count overlapping windows
        for i, (si, ei) in enumerate(windows):
            overlapping = sum(
                1 for (sj, ej) in windows if sj <= si < ej
            )
            assert overlapping <= c


class TestRateLimiter:
    def test_spaces_admissions_at_rate(self):
        rl = RateLimiter(2.0)  # 2/s -> 0.5s interval
        assert rl.admit(0.0) == 0.0
        assert rl.admit(0.0) == 0.5
        assert rl.admit(0.0) == 1.0

    def test_idle_limiter_admits_immediately(self):
        rl = RateLimiter(10.0)
        rl.admit(0.0)
        assert rl.admit(5.0) == 5.0

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError):
            RateLimiter(0.0)

    @given(st.lists(st.floats(0, 10), min_size=2, max_size=50))
    def test_sustained_rate_never_exceeded(self, arrivals):
        rate = 4.0
        rl = RateLimiter(rate)
        t = 0.0
        admitted = []
        for gap in arrivals:
            t += gap
            admitted.append(rl.admit(t))
        for a, b in zip(admitted, admitted[1:]):
            assert b - a >= 1.0 / rate - 1e-12

    def test_interval_is_reciprocal_rate(self):
        assert RateLimiter(8.0).interval == 0.125


class TestAccounting:
    """busy_time / served / admitted counters and reset() round-trips.

    The world-reuse path (``World.run`` called repeatedly on one world)
    leans on ``reset()`` restoring resources to a bit-identical fresh
    state; these tests pin that under interleaved reservations.
    """

    def test_server_counters_accumulate(self):
        s = Server()
        s.reserve(0.0, 2.0)   # busy [0, 2)
        s.reserve(1.0, 3.0)   # queued: busy [2, 5)
        s.reserve(10.0, 0.0)  # zero service still counts as served
        assert s.busy_time == 5.0
        assert s.served == 3
        assert s.next_free() == 10.0

    def test_multiserver_counters_accumulate(self):
        ms = MultiServer(2)
        ms.reserve(0.0, 4.0)
        ms.reserve(0.0, 1.0)
        ms.reserve(0.0, 1.0)  # queues behind the 1.0s lane
        assert ms.busy_time == 6.0
        assert ms.served == 3
        assert ms.next_free() == 2.0  # fast lane: 1.0 + 1.0

    def test_rate_limiter_counts_admissions(self):
        rl = RateLimiter(2.0)
        for _ in range(5):
            rl.admit(0.0)
        assert rl.admitted == 5

    def test_failed_reservation_leaves_counters_untouched(self):
        s, ms = Server(), MultiServer(3)
        with pytest.raises(ValueError):
            s.reserve(0.0, -1.0)
        with pytest.raises(ValueError):
            ms.reserve(0.0, -1.0)
        assert (s.busy_time, s.served) == (0.0, 0)
        assert (ms.busy_time, ms.served) == (0.0, 0)
        assert ms.next_free() == 0.0  # no lane was popped and lost

    @staticmethod
    def _state(res):
        if isinstance(res, RateLimiter):
            return (res._next_slot, res.admitted)
        return (res.next_free(), res.busy_time, res.served)

    def test_reset_round_trips_under_interleaved_reservations(self):
        # drive all three resource kinds through an interleaved schedule,
        # reset, replay the same schedule: identical windows and counters
        def build():
            return Server("nic"), MultiServer(2, "mem"), RateLimiter(4.0, "mr")

        def drive(s, ms, rl):
            log = []
            for now in (0.0, 0.25, 0.25, 1.5, 1.5, 7.0):
                log.append(s.reserve(now, 0.5))
                log.append(ms.reserve(now, 1.25))
                log.append(rl.admit(now))
                log.append(ms.reserve(now, 0.75))
            return log

        s, ms, rl = build()
        first = drive(s, ms, rl)
        dirty = [self._state(r) for r in (s, ms, rl)]
        for r in (s, ms, rl):
            r.reset()
        fresh = Server(), MultiServer(2), RateLimiter(4.0)
        assert [self._state(r) for r in (s, ms, rl)] == [
            self._state(r) for r in fresh
        ]
        second = drive(s, ms, rl)
        assert second == first  # replay after reset is bit-identical
        assert [self._state(r) for r in (s, ms, rl)] == dirty

    def test_reset_preserves_identity_and_capacity(self):
        ms = MultiServer(3, "mem")
        ms.reserve(0.0, 1.0)
        ms.reset()
        assert ms.servers == 3 and ms.name == "mem"
        # all three lanes free again
        assert ms.reserve(0.0, 1.0) == (0.0, 1.0)
        assert ms.reserve(0.0, 1.0) == (0.0, 1.0)
        assert ms.reserve(0.0, 1.0) == (0.0, 1.0)

    def test_rate_limiter_reset_keeps_rate(self):
        rl = RateLimiter(2.0, "mr")
        rl.admit(0.0), rl.admit(0.0)
        rl.reset()
        assert (rl.rate, rl.interval, rl.name) == (2.0, 0.5, "mr")
        assert rl.admit(0.0) == 0.0
        assert rl.admit(0.0) == 0.5
        assert rl.admitted == 2

"""Unit and property tests for queueing resources."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.resources import MultiServer, RateLimiter, Server


class TestServer:
    def test_idle_server_starts_immediately(self):
        s = Server()
        assert s.reserve(5.0, 2.0) == (5.0, 7.0)

    def test_back_to_back_requests_queue(self):
        s = Server()
        assert s.reserve(0.0, 10.0) == (0.0, 10.0)
        assert s.reserve(5.0, 1.0) == (10.0, 11.0)

    def test_gap_leaves_server_idle(self):
        s = Server()
        s.reserve(0.0, 1.0)
        assert s.reserve(100.0, 1.0) == (100.0, 101.0)

    def test_negative_service_rejected(self):
        with pytest.raises(ValueError):
            Server().reserve(0.0, -1.0)

    def test_accounting(self):
        s = Server()
        s.reserve(0.0, 2.0)
        s.reserve(0.0, 3.0)
        assert s.busy_time == 5.0
        assert s.served == 2

    @given(st.lists(st.tuples(st.floats(0, 100), st.floats(0, 10)), max_size=50))
    def test_fifo_windows_never_overlap(self, reqs):
        s = Server()
        t = 0.0
        windows = []
        for arrival_gap, service in reqs:
            t += arrival_gap
            windows.append(s.reserve(t, service))
        for (s1, e1), (s2, e2) in zip(windows, windows[1:]):
            assert e1 <= s2 or s2 == e1  # strictly ordered, no overlap
            assert s2 >= s1


class TestMultiServer:
    def test_parallel_up_to_capacity(self):
        ms = MultiServer(2)
        assert ms.reserve(0.0, 10.0) == (0.0, 10.0)
        assert ms.reserve(0.0, 10.0) == (0.0, 10.0)
        # third request queues behind the earliest-free server
        assert ms.reserve(0.0, 1.0) == (10.0, 11.0)

    def test_single_server_degenerates_to_server(self):
        ms, s = MultiServer(1), Server()
        for now, svc in [(0, 5), (1, 2), (8, 1)]:
            assert ms.reserve(now, svc) == s.reserve(now, svc)

    def test_requires_at_least_one_server(self):
        with pytest.raises(ValueError):
            MultiServer(0)

    @given(
        c=st.integers(1, 8),
        reqs=st.lists(st.floats(0.1, 5.0), min_size=1, max_size=40),
    )
    def test_concurrency_never_exceeds_capacity(self, c, reqs):
        ms = MultiServer(c)
        windows = [ms.reserve(0.0, svc) for svc in reqs]
        # at any window start, count overlapping windows
        for i, (si, ei) in enumerate(windows):
            overlapping = sum(
                1 for (sj, ej) in windows if sj <= si < ej
            )
            assert overlapping <= c


class TestRateLimiter:
    def test_spaces_admissions_at_rate(self):
        rl = RateLimiter(2.0)  # 2/s -> 0.5s interval
        assert rl.admit(0.0) == 0.0
        assert rl.admit(0.0) == 0.5
        assert rl.admit(0.0) == 1.0

    def test_idle_limiter_admits_immediately(self):
        rl = RateLimiter(10.0)
        rl.admit(0.0)
        assert rl.admit(5.0) == 5.0

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError):
            RateLimiter(0.0)

    @given(st.lists(st.floats(0, 10), min_size=2, max_size=50))
    def test_sustained_rate_never_exceeded(self, arrivals):
        rate = 4.0
        rl = RateLimiter(rate)
        t = 0.0
        admitted = []
        for gap in arrivals:
            t += gap
            admitted.append(rl.admit(t))
        for a, b in zip(admitted, admitted[1:]):
            assert b - a >= 1.0 / rate - 1e-12

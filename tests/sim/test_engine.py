"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim import (
    DeadlockError,
    Delay,
    Engine,
    SimulationError,
    WaitAll,
    WaitEvent,
)


def test_delay_orders_processes():
    eng = Engine()
    log = []

    def worker(name, dt):
        yield Delay(dt)
        log.append((eng.now, name))

    eng.spawn(worker("slow", 2.0))
    eng.spawn(worker("fast", 1.0))
    eng.run()
    assert log == [(1.0, "fast"), (2.0, "slow")]


def test_zero_delay_preserves_spawn_order():
    eng = Engine()
    log = []

    def worker(name):
        yield Delay(0.0)
        log.append(name)

    for name in "abc":
        eng.spawn(worker(name))
    eng.run()
    assert log == ["a", "b", "c"]


def test_negative_delay_rejected():
    with pytest.raises(ValueError):
        Delay(-1.0)


def test_event_passes_value():
    eng = Engine()
    ev = eng.event("data")
    got = []

    def producer():
        yield Delay(3.0)
        ev.trigger("payload")

    def consumer():
        value = yield WaitEvent(ev)
        got.append((eng.now, value))

    eng.spawn(consumer())
    eng.spawn(producer())
    eng.run()
    assert got == [(3.0, "payload")]


def test_wait_on_already_triggered_event():
    eng = Engine()
    ev = eng.event()

    def body():
        yield Delay(1.0)
        ev.trigger(42)
        value = yield WaitEvent(ev)
        return value

    proc = eng.spawn(body())
    eng.run()
    assert proc.result == 42
    assert eng.now == 1.0


def test_event_double_trigger_rejected():
    eng = Engine()
    ev = eng.event()
    ev.trigger()
    with pytest.raises(SimulationError):
        ev.trigger()


def test_wait_all_collects_values_in_order():
    eng = Engine()
    evs = [eng.event(str(i)) for i in range(3)]

    def trigger(i, dt):
        yield Delay(dt)
        evs[i].trigger(i * 10)

    def waiter():
        values = yield WaitAll(evs)
        return (eng.now, values)

    proc = eng.spawn(waiter())
    # trigger out of order; results must come back in argument order
    eng.spawn(trigger(1, 1.0))
    eng.spawn(trigger(0, 5.0))
    eng.spawn(trigger(2, 2.0))
    eng.run()
    assert proc.result == (5.0, [0, 10, 20])


def test_wait_all_empty_resumes_immediately():
    eng = Engine()

    def waiter():
        values = yield WaitAll([])
        return values

    proc = eng.spawn(waiter())
    eng.run()
    assert proc.result == []


def test_process_return_value_and_done_event():
    eng = Engine()

    def body():
        yield Delay(1.5)
        return "finished"

    proc = eng.spawn(body())
    assert not proc.finished
    eng.run()
    assert proc.finished
    assert proc.result == "finished"


def test_nested_generators_via_yield_from():
    eng = Engine()

    def inner():
        yield Delay(1.0)
        return 7

    def outer():
        value = yield from inner()
        yield Delay(1.0)
        return value + 1

    proc = eng.spawn(outer())
    eng.run()
    assert proc.result == 8
    assert eng.now == 2.0


def test_deadlock_detection():
    eng = Engine()

    def blocked():
        yield WaitEvent(eng.event("never"))

    eng.spawn(blocked())
    with pytest.raises(DeadlockError):
        eng.run()


def test_run_until_stops_early():
    eng = Engine()

    def body():
        yield Delay(10.0)

    eng.spawn(body())
    t = eng.run(until=5.0)
    assert t == 5.0
    eng.run()
    assert eng.now == 10.0


def test_run_until_advances_clock_when_heap_drains_first():
    # all work ends at t=2, but the requested horizon is t=5: the clock
    # must land on the horizon, not on the last event
    eng = Engine()

    def body():
        yield Delay(2.0)

    eng.spawn(body())
    t = eng.run(until=5.0)
    assert t == 5.0 and eng.now == 5.0


def test_run_until_in_past_never_moves_clock_backwards():
    eng = Engine()

    def body():
        yield Delay(10.0)

    eng.spawn(body())
    eng.run(until=6.0)
    assert eng.now == 6.0
    # a horizon behind the clock is a no-op for time...
    t = eng.run(until=3.0)
    assert t == 6.0 and eng.now == 6.0
    # ...and the pending work is still intact
    eng.run()
    assert eng.now == 10.0


def test_run_until_runs_event_at_exactly_the_cutoff():
    eng = Engine()
    log = []

    def body(name, dt):
        yield Delay(dt)
        log.append((eng.now, name))

    eng.spawn(body("at-cutoff", 5.0))
    eng.spawn(body("after", 5.5))
    eng.run(until=5.0)
    assert log == [(5.0, "at-cutoff")]
    eng.run()
    assert log == [(5.0, "at-cutoff"), (5.5, "after")]


def test_run_until_drains_ready_queue_at_cutoff():
    # an event triggered at exactly `until` readies its waiter; that waiter
    # must run before the engine returns, not be stranded for the next run
    eng = Engine()
    ev = eng.event()
    woke = []

    def trigger():
        yield Delay(5.0)
        ev.trigger("go")

    def waiter():
        value = yield WaitEvent(ev)
        woke.append((eng.now, value))

    eng.spawn(waiter())
    eng.spawn(trigger())
    eng.run(until=5.0)
    assert woke == [(5.0, "go")]


def test_repeated_run_until_is_monotonic():
    eng = Engine()

    def body():
        yield Delay(100.0)

    eng.spawn(body())
    seen = []
    for horizon in (1.0, 4.0, 2.0, 4.0, 50.0, 10.0):
        eng.run(until=horizon)
        seen.append(eng.now)
    assert seen == sorted(seen)  # the clock never went backwards
    assert seen == [1.0, 4.0, 4.0, 4.0, 50.0, 50.0]
    eng.run()
    assert eng.now == 100.0


def test_timeout_event():
    eng = Engine()
    ev = eng.timeout(4.0, value="late")

    def waiter():
        value = yield WaitEvent(ev)
        return (eng.now, value)

    proc = eng.spawn(waiter())
    eng.run()
    assert proc.result == (4.0, "late")


def test_cannot_schedule_in_past():
    eng = Engine()

    def body():
        yield Delay(2.0)
        eng.call_at(1.0, lambda: None)

    eng.spawn(body())
    with pytest.raises(SimulationError):
        eng.run()


def test_exception_in_process_propagates():
    eng = Engine()

    def body():
        yield Delay(1.0)
        raise RuntimeError("boom")

    eng.spawn(body())
    with pytest.raises(RuntimeError, match="boom"):
        eng.run()


def test_many_processes_deterministic():
    def run_once():
        eng = Engine()
        log = []

        def worker(i):
            yield Delay((i * 7) % 5)
            log.append(i)
            yield Delay((i * 3) % 4)
            log.append(-i)

        for i in range(50):
            eng.spawn(worker(i))
        eng.run()
        return log

    assert run_once() == run_once()

"""End-to-end application integration test: a 1-D heat-diffusion stencil.

Each rank owns a contiguous slab of the domain; every timestep it halo-
exchanges boundary cells with its neighbours (p2p), applies the stencil,
and every few steps the cluster allreduces the global residual to decide
convergence.  The simulated result must equal a plain single-process numpy
computation bit-for-bit — across libraries, mechanisms, and cluster
shapes.  This exercises p2p + collectives + real data in one realistic
program, the way an actual MPI application composes them.
"""

import numpy as np
import pytest

from repro.baselines import make_library
from repro.hw import Topology, tiny_test_machine
from repro.mpi import DOUBLE, SUM, Buffer

CELLS_PER_RANK = 16
STEPS = 6
ALPHA = 0.1


def reference_solution(initial: np.ndarray) -> tuple[np.ndarray, list[float]]:
    """Single-process ground truth (fixed boundaries)."""
    u = initial.copy()
    residuals = []
    for _ in range(STEPS):
        nxt = u.copy()
        nxt[1:-1] = u[1:-1] + ALPHA * (u[:-2] - 2 * u[1:-1] + u[2:])
        residuals.append(float(np.sum((nxt - u) ** 2)))
        u = nxt
    return u, residuals


def simulated_solution(lib_name: str, shape: tuple[int, int]):
    lib = make_library(lib_name)
    world = lib.make_world(Topology(*shape), tiny_test_machine())
    size = world.world_size
    n = size * CELLS_PER_RANK

    rng = np.random.default_rng(0)
    initial = rng.random(n)

    slabs = [
        Buffer.real(initial[r * CELLS_PER_RANK:(r + 1) * CELLS_PER_RANK].copy())
        for r in range(size)
    ]
    halo_lo = [Buffer.alloc(DOUBLE, 1) for _ in range(size)]
    halo_hi = [Buffer.alloc(DOUBLE, 1) for _ in range(size)]
    local_res = [Buffer.alloc(DOUBLE, 1) for _ in range(size)]
    global_res = [Buffer.alloc(DOUBLE, 1) for _ in range(size)]
    residual_log = []

    def body(ctx):
        me = ctx.rank
        u = slabs[me]
        for step in range(STEPS):
            # halo exchange with neighbours (edges have fixed boundaries)
            reqs = []
            if me > 0:
                reqs.append(ctx.irecv(me - 1, halo_lo[me], tag=("h", step, 0)))
                sreq = yield from ctx.isend(
                    me - 1, u.view(0, 1), tag=("h", step, 1)
                )
                reqs.append(sreq)
            if me < ctx.world_size - 1:
                reqs.append(ctx.irecv(me + 1, halo_hi[me], tag=("h", step, 1)))
                sreq = yield from ctx.isend(
                    me + 1, u.view(CELLS_PER_RANK - 1, 1), tag=("h", step, 0)
                )
                reqs.append(sreq)
            yield from ctx.waitall(reqs)

            # stencil update (ghost cells from halos; global edges fixed)
            arr = u.array()
            left = halo_lo[me].array()[0] if me > 0 else None
            right = halo_hi[me].array()[0] if me < ctx.world_size - 1 else None
            ext = np.empty(CELLS_PER_RANK + 2)
            ext[1:-1] = arr
            ext[0] = left if left is not None else arr[0]
            ext[-1] = right if right is not None else arr[-1]
            nxt = arr.copy()
            lo = 1 if me == 0 else 0
            hi = CELLS_PER_RANK - 1 if me == ctx.world_size - 1 else CELLS_PER_RANK
            idx = np.arange(lo, hi)
            nxt[idx] = arr[idx] + ALPHA * (
                ext[idx] - 2 * arr[idx] + ext[idx + 2]
            )
            yield from ctx.compute(1e-7)

            local_res[me].array()[0] = float(np.sum((nxt - arr) ** 2))
            arr[:] = nxt
            yield from lib.allreduce(ctx, local_res[me], global_res[me], SUM)
            if me == 0:
                residual_log.append(float(global_res[0].array()[0]))

    world.run(body)
    final = np.concatenate([s.array() for s in slabs])
    return initial, final, residual_log


@pytest.mark.parametrize("lib_name", ["PiP-MColl", "PiP-MPICH", "IntelMPI"])
@pytest.mark.parametrize("shape", [(1, 4), (2, 3), (4, 2)])
def test_stencil_matches_single_process_numpy(lib_name, shape):
    initial, final, residuals = simulated_solution(lib_name, shape)
    expected_final, expected_residuals = reference_solution(initial)
    np.testing.assert_allclose(final, expected_final, rtol=1e-12)
    np.testing.assert_allclose(residuals, expected_residuals, rtol=1e-9)


def test_all_libraries_agree_bitwise_on_field(ns=None):
    fields = []
    for lib_name in ("PiP-MColl", "OpenMPI", "MVAPICH2"):
        _, final, _ = simulated_solution(lib_name, (2, 2))
        fields.append(final)
    for other in fields[1:]:
        assert np.array_equal(fields[0], other)

"""Shared fixtures: keep the bench result cache out of the working tree.

Every test gets a private ``PIPMCOLL_CACHE_DIR`` so suite runs never read
or pollute a developer's ``.bench_cache/`` — cache behaviour itself is
exercised explicitly in ``tests/bench/test_runner.py``.
"""

import pytest


@pytest.fixture(autouse=True)
def _isolated_bench_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("PIPMCOLL_CACHE_DIR", str(tmp_path / "bench_cache"))

"""Fig. 1 — internode p2p message rate and throughput vs #senders.

The paper's motivation figure: one process cannot saturate the Omni-Path
NIC's message rate (4 kB messages) or bandwidth (128 kB messages); multiple
concurrent sender/receiver pairs can.
"""

from repro.bench.figures import fig01_multiobject_p2p

from _common import run_figure


def test_fig01_multiobject_p2p(benchmark):
    result = run_figure(benchmark, fig01_multiobject_p2p)
    rate = result.series["msgrate_4kB[msg/s]"]
    bw = result.series["throughput_128kB[B/s]"]
    # multiple senders raise the message rate substantially before the
    # hardware ceiling flattens the curve
    assert rate[2] > 2.0 * rate[0]
    # one sender cannot saturate the NIC with 128 kB streams; a few can
    assert bw[0] < 0.85 * bw[-1]
    assert bw[3] > 1.5 * bw[0]
    # both series are monotone non-decreasing (more objects never hurt)
    assert all(b >= a * 0.999 for a, b in zip(rate, rate[1:]))
    assert all(b >= a * 0.999 for a, b in zip(bw, bw[1:]))

"""Ablations of the design choices DESIGN.md calls out.

Four studies, each isolating one ingredient of PiP-MColl's performance:

* **multi-object fan-out** — if a single process could already saturate
  the NIC (per-process limits lifted to line rate), the multi-object
  design would buy little; with realistic per-process limits it buys a
  lot.  This is the causal test of the paper's Fig. 1 motivation.
* **intra/internode overlap** — the overlapped intranode scatter
  (§III-A1) and overlapped intranode broadcast in the ring allgather
  (§III-B1), switched off via the ``overlap`` knobs.
* **PiP size-synchronisation sensitivity** — PiP-MPICH pays the handshake
  per intranode message, PiP-MColl's redesigned collectives mostly avoid
  it; sweeping the handshake cost shows who depends on it.
* **algorithm switch point** — the 64 kB allgather threshold (§IV-D2)
  against earlier/later switches.

The first and third studies compare registry libraries under
``MachineParams`` overrides, so they submit declarative ``Point``s through
:mod:`repro.bench.runner` (pool + cache apply).  The overlap and
switch-point studies need non-registry knobs (``overlap=``,
``Thresholds``) and stay direct.
"""

import pytest

from repro.bench.config import current_scale
from repro.bench.runner import Point, run_points
from repro.core import PiPMColl, Thresholds, mcoll_allgather_large, mcoll_scatter
from repro.hw import Topology, bebop_broadwell
from repro.mpi import SUM, Buffer, World
from repro.shmem import PipShmem
from repro.util.units import KB


def _world(params=None, nodes=None, ppn=None):
    scale = current_scale()
    return World(
        Topology(nodes or scale.nodes, ppn or scale.ppn),
        params or bebop_broadwell(),
        mechanism=PipShmem(),
        phantom=True,
    )


def _run_scatter(world, nbytes, overlap=True):
    size = world.world_size
    sendbuf = Buffer.phantom(nbytes * size)
    recvs = [Buffer.phantom(nbytes) for _ in range(size)]

    def body(ctx):
        sb = sendbuf if ctx.rank == 0 else None
        yield from mcoll_scatter(ctx, sb, recvs[ctx.rank], overlap=overlap)

    world.run(body)  # warm-up
    return world.run(body).elapsed


def _run_allgather_large(world, nbytes, overlap=True):
    size = world.world_size
    sends = [Buffer.phantom(nbytes) for _ in range(size)]
    recvs = [Buffer.phantom(nbytes * size) for _ in range(size)]

    def body(ctx):
        yield from mcoll_allgather_large(
            ctx, sends[ctx.rank], recvs[ctx.rank], overlap=overlap
        )

    world.run(body)
    return world.run(body).elapsed


def _lib_time(lib, world, collective, nbytes):
    size = world.world_size
    if collective == "scatter":
        sendbuf = Buffer.phantom(nbytes * size)
        recvs = [Buffer.phantom(nbytes) for _ in range(size)]

        def body(ctx):
            sb = sendbuf if ctx.rank == 0 else None
            yield from lib.scatter(ctx, sb, recvs[ctx.rank])

    else:
        sends = [Buffer.phantom(nbytes) for _ in range(size)]
        recvs = [Buffer.phantom(nbytes * size) for _ in range(size)]

        def body(ctx):
            yield from lib.allgather(ctx, sends[ctx.rank], recvs[ctx.rank])

    world.run(body)
    return world.run(body).elapsed


def test_ablation_multiobject_fanout(benchmark):
    """Lifting per-process NIC limits to line rate collapses the
    multi-object advantage — the mechanism behind Fig. 1."""

    def study():
        realistic = bebop_broadwell()
        uncapped = realistic.with_overrides(
            proc_msg_rate=realistic.nic_msg_rate,
            proc_bandwidth=realistic.nic_bandwidth,
            proc_dma_bandwidth=realistic.nic_bandwidth,
        )
        scale = current_scale()
        variants = (("realistic", realistic), ("uncapped", uncapped))
        points = [
            Point(lib, "scatter", scale.nodes, scale.ppn, 256, params=params)
            for _, params in variants
            for lib in ("PiP-MColl", "PiP-MPICH")
        ]
        results = run_points(points)
        out = {}
        for i, (label, _) in enumerate(variants):
            mcoll_t, mpich_t = results[2 * i].time, results[2 * i + 1].time
            out[label] = mpich_t / mcoll_t
        return out

    speedups = benchmark.pedantic(study, rounds=1, iterations=1)
    print(f"\nscatter speedup vs PiP-MPICH: realistic NIC "
          f"{speedups['realistic']:.2f}x, uncapped NIC "
          f"{speedups['uncapped']:.2f}x")
    # the multi-object advantage must come mostly from per-process limits
    assert speedups["realistic"] > speedups["uncapped"]


def test_ablation_overlap(benchmark):
    """Overlap on vs off for the scatter and the large allgather."""

    def study():
        nbytes = 64 * KB
        return {
            "scatter_on": _run_scatter(_world(), nbytes, overlap=True),
            "scatter_off": _run_scatter(_world(), nbytes, overlap=False),
            "allgather_on": _run_allgather_large(_world(), nbytes, overlap=True),
            "allgather_off": _run_allgather_large(_world(), nbytes, overlap=False),
        }

    t = benchmark.pedantic(study, rounds=1, iterations=1)
    print(f"\nscatter:   overlap {t['scatter_on'] * 1e6:.1f}us  "
          f"no-overlap {t['scatter_off'] * 1e6:.1f}us")
    print(f"allgather: overlap {t['allgather_on'] * 1e6:.1f}us  "
          f"no-overlap {t['allgather_off'] * 1e6:.1f}us")
    # overlap never hurts, and helps the allgather measurably
    assert t["scatter_on"] <= t["scatter_off"] * 1.001
    assert t["allgather_on"] < t["allgather_off"]


def test_ablation_pip_sizesync_sensitivity(benchmark):
    """PiP-MPICH degrades with the handshake cost; PiP-MColl barely moves."""

    def study():
        scale = current_scale()
        keys, points = [], []
        for factor in (1.0, 4.0):
            params = bebop_broadwell()
            params = params.with_overrides(
                pip_sizesync_time=params.pip_sizesync_time * factor
            )
            for name in ("PiP-MColl", "PiP-MPICH"):
                keys.append((name, factor))
                points.append(
                    Point(name, "allgather", scale.nodes, scale.ppn, 64,
                          params=params)
                )
        results = run_points(points)
        return {k: r.time for k, r in zip(keys, results)}

    t = benchmark.pedantic(study, rounds=1, iterations=1)
    mcoll_growth = t[("PiP-MColl", 4.0)] / t[("PiP-MColl", 1.0)]
    mpich_growth = t[("PiP-MPICH", 4.0)] / t[("PiP-MPICH", 1.0)]
    print(f"\n4x size-sync cost: PiP-MColl {mcoll_growth:.3f}x slower, "
          f"PiP-MPICH {mpich_growth:.3f}x slower")
    assert mpich_growth > mcoll_growth
    assert mcoll_growth < 1.15  # the redesign removed the dependence


@pytest.mark.parametrize("switch_kb", [8, 64, 512])
def test_ablation_allgather_switchpoint(benchmark, switch_kb):
    """§IV-D2's 64 kB switch: probe alternatives around it."""

    def study():
        lib = PiPMColl(Thresholds(allgather_large_bytes=switch_kb * KB))
        scale = current_scale()
        world = lib.make_world(
            Topology(scale.nodes, scale.ppn), bebop_broadwell(), phantom=True
        )
        times = {}
        for nbytes in (16 * KB, 64 * KB, 256 * KB):
            times[nbytes] = _lib_time(lib, world, "allgather", nbytes)
        return times

    times = benchmark.pedantic(study, rounds=1, iterations=1)
    pretty = {f"{k // KB}kB": f"{v * 1e3:.2f}ms" for k, v in times.items()}
    print(f"\nswitch at {switch_kb}kB -> {pretty}")
    # sanity only: every configuration completes; the recorded tables in
    # results/ show 64 kB is the sweet spot
    assert all(v > 0 for v in times.values())

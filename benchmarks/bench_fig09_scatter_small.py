"""Fig. 9 — MPI_Scatter, small message sizes (16-512 B), five libraries.

The paper reports PiP-MColl consistently fastest, best speedup 65 % at
256 B, and clips the plotted bars at 4x.
"""

from repro.bench.figures import fig09_scatter_small

from _common import run_figure


def test_fig09_scatter_small(benchmark):
    result = run_figure(benchmark, fig09_scatter_small, cap=4.0)
    mcoll = result.series["PiP-MColl"]
    # PiP-MColl is the fastest library at every small size
    for lib, series in result.series.items():
        if lib != "PiP-MColl":
            assert all(m <= s for m, s in zip(mcoll, series)), lib
    # and the advantage over the best competitor is substantial somewhere
    assert result.best_speedup_vs_fastest_other() > 1.2

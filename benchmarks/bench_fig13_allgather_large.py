"""Fig. 13 — MPI_Allgather, medium and large sizes (1-512 kB), including
the PiP-MColl-small variant.

The headline behaviours asserted here:

* the 64 kB switch to the multi-object ring pays off — the forced
  small-algorithm variant is markedly slower above the switch point
  (the paper reports 146 % at 256 kB);
* PiP-MColl beats the hierarchical libraries across the sweep.

At reduced scales the *flat* ring baselines (PiP-MPICH/Open MPI) are
relatively stronger in the 4-32 kB band than the paper's 2304-rank runs,
because a 192-rank ring pays 12x less per-step latency; see
EXPERIMENTS.md for the scale analysis.
"""

from repro.bench.figures import fig13_allgather_large

from _common import run_figure


def test_fig13_allgather_large(benchmark):
    result = run_figure(benchmark, fig13_allgather_large, cap=6.0)
    xs = list(result.xs)
    mcoll = result.series["PiP-MColl"]
    small_variant = result.series["PiP-MColl-small"]
    # identical below the switch...
    i64 = xs.index("64kB")
    for i in range(i64):
        assert mcoll[i] == small_variant[i]
    # ...and the ring algorithm clearly wins above it (1.18-1.6x at the
    # default medium scale; 1.7-6.5x at paper scale — see EXPERIMENTS.md)
    for i in range(i64, len(xs)):
        assert small_variant[i] > 1.1 * mcoll[i]
    # PiP-MColl beats the hierarchical libraries across the sweep
    for lib in ("IntelMPI", "MVAPICH2"):
        assert all(m < s for m, s in zip(mcoll, result.series[lib]))

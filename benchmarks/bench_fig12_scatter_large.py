"""Fig. 12 — MPI_Scatter, medium and large sizes (1-512 kB).

Same algorithm as for small sizes (§III-A1 is scalable in C_b); the paper
reports the speedup largest at 1 kB and gradually shrinking as the network
saturates, but PiP-MColl stays fastest everywhere.
"""

from repro.bench.figures import fig12_scatter_large

from _common import run_figure


def test_fig12_scatter_large(benchmark):
    result = run_figure(benchmark, fig12_scatter_large, cap=2.0)
    mcoll = result.series["PiP-MColl"]
    for lib, series in result.series.items():
        if lib != "PiP-MColl":
            assert all(m <= s for m, s in zip(mcoll, series)), lib
    # the relative advantage decays (or at least does not grow) from the
    # 1 kB point to the 512 kB point as bandwidth saturates
    speedups = result.speedup_vs("PiP-MPICH")
    assert speedups[-1] <= speedups[0] * 1.1

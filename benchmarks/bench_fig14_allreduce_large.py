"""Fig. 14 — MPI_Allreduce, medium and large double counts (1 k-512 k),
including the PiP-MColl-small variant.

The paper's behaviours asserted here:

* PiP-MColl falls behind somewhere in the 1 k-4 k band (the small
  algorithm's multi-object synchronisation cannot amortise — §IV-D3);
* from the 8 k-count switch on, the reduce-scatter + ring algorithm makes
  PiP-MColl fastest, with a large margin over the forced-small variant
  (the paper reports a 91 % average gain at >= 16 k).
"""

from repro.bench.figures import fig14_allreduce_large

from _common import at_least_medium_scale, run_figure


def test_fig14_allreduce_large(benchmark):
    result = run_figure(benchmark, fig14_allreduce_large)
    xs = list(result.xs)
    mcoll = result.series["PiP-MColl"]
    small_variant = result.series["PiP-MColl-small"]
    i8k = xs.index("8k")

    # the crossover exists: some pre-switch point where a baseline wins
    pre = range(i8k)
    others = [lib for lib in result.series if not lib.startswith("PiP-MColl")]
    assert any(
        result.series[lib][i] < mcoll[i] for lib in others for i in pre
    )
    if at_least_medium_scale():
        # from the switch on, PiP-MColl is fastest...
        for i in range(i8k, len(xs)):
            for lib in others:
                assert mcoll[i] < result.series[lib][i], (lib, xs[i])
        # ...and far ahead of the forced-small variant
        for i in range(i8k, len(xs)):
            assert small_variant[i] > 1.5 * mcoll[i]

"""Fig. 7 — MPI_Allgather vs node count (16 B and 1 kB), PiP-MColl vs the
PiP-MPICH baseline."""

from repro.bench.figures import fig07_allgather_scaling

from _common import at_least_medium_scale, run_figure


def test_fig07_allgather_scaling(benchmark):
    result = run_figure(benchmark, fig07_allgather_scaling)
    small_m = result.series["PiP-MColl @16B"]
    small_b = result.series["PiP-MPICH @16B"]
    med_m = result.series["PiP-MColl @1kB"]
    med_b = result.series["PiP-MPICH @1kB"]
    # PiP-MColl beats the baseline in all cases (§IV-B2)
    assert all(m < b for m, b in zip(small_m, small_b))
    if at_least_medium_scale():
        # the 1 kB ordering needs realistic node counts (see EXPERIMENTS.md)
        assert all(m < b for m, b in zip(med_m, med_b))
    # the small-message speedup grows with node count (the paper reports
    # its largest gain, >6x, at the full 128 nodes)
    first = small_b[0] / small_m[0]
    last = small_b[-1] / small_m[-1]
    assert last > first

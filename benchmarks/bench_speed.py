"""Engine speed benchmark: event loop vs DAG fast path, same points.

Times ``repro.bench.microbench.run_point`` wall-clock for both engines on
a fixed planner-backed grid, asserts the results are bit-identical, and
records per-point and aggregate speedups in ``BENCH_fastpath.json`` at the
repository root — the provenance for the numbers quoted in DESIGN.md.

Every rep is a complete fresh ``run_point`` call (world construction
included); ``best-of-N`` wall times are reported because the shared CI
boxes are noisy.  Planner ``lru_cache``s are warm after the first rep on
both sides — the same steady state a figure sweep runs in.

Usage::

    python benchmarks/bench_speed.py                 # full grid -> JSON
    python benchmarks/bench_speed.py --smoke         # CI gate: tiny grid,
                                                     # exit 1 unless the DAG
                                                     # engine is faster

(The file matches the ``bench_*.py`` pytest glob but defines no tests; it
is a command-line tool.)
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path

from repro.bench.microbench import run_point

#: (library, collective, nodes, ppn, msg_bytes) — a representative slice of
#: the planner-backed surface: every registry library, all three
#: collectives, small/medium/large sizes, two node shapes.
GRID = (
    ("PiP-MColl", "scatter", 4, 8, 16384),
    ("PiP-MColl", "allgather", 4, 8, 512),
    ("PiP-MColl", "allgather", 4, 8, 65536),
    ("PiP-MColl", "allreduce", 4, 8, 512),
    ("PiP-MColl", "allreduce", 4, 8, 65536),
    ("PiP-MColl", "allreduce", 4, 8, 262144),
    ("PiP-MColl-small", "allreduce", 4, 8, 32768),
    ("PiP-MColl-small", "allgather", 2, 16, 8192),
    ("PiP-MPICH", "allgather", 4, 8, 512),
    ("PiP-MPICH", "allgather", 4, 8, 131072),
    ("OpenMPI", "allgather", 4, 8, 65536),
    ("OpenMPI", "allgather", 2, 16, 4096),
)

SMOKE_GRID = (
    ("PiP-MColl", "allreduce", 2, 4, 512),
    ("PiP-MColl", "allgather", 2, 4, 32768),
    ("PiP-MPICH", "allgather", 2, 4, 4096),
)


def _time_point(spec, engine: str, reps: int) -> tuple[float, object]:
    """Best-of-``reps`` wall seconds for one fresh-world evaluation."""
    lib, coll, nodes, ppn, nbytes = spec
    best = float("inf")
    result = None
    for _ in range(reps):
        t0 = time.perf_counter()
        result = run_point(lib, coll, nodes, ppn, nbytes, engine=engine)
        best = min(best, time.perf_counter() - t0)
    return best, result


def run_grid(grid, reps: int):
    """Measure every point on both engines; returns (rows, mismatches)."""
    rows = []
    mismatches = []
    for spec in grid:
        event_s, event_res = _time_point(spec, "event", reps)
        dag_s, dag_res = _time_point(spec, "dag", reps)
        if event_res != dag_res:
            mismatches.append(spec)
        lib, coll, nodes, ppn, nbytes = spec
        rows.append({
            "library": lib,
            "collective": coll,
            "nodes": nodes,
            "ppn": ppn,
            "msg_bytes": nbytes,
            "event_s": event_s,
            "dag_s": dag_s,
            "speedup": event_s / dag_s,
        })
        print(
            f"  {lib:>15} {coll:<9} {nodes}x{ppn:<2} {nbytes:>6}B  "
            f"event {event_s * 1e3:8.2f}ms  dag {dag_s * 1e3:8.2f}ms  "
            f"{event_s / dag_s:5.2f}x",
            flush=True,
        )
    return rows, mismatches


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny grid, no JSON; exit 1 unless DAG beats the event loop "
             "on aggregate and results are bit-identical (the CI gate)",
    )
    parser.add_argument(
        "--reps", type=int, default=None,
        help="wall-clock reps per (point, engine); best is kept "
             "(default 3, smoke 2)",
    )
    parser.add_argument(
        "--out", default=None,
        help="output JSON path (default: BENCH_fastpath.json at repo root)",
    )
    args = parser.parse_args(argv)

    grid = SMOKE_GRID if args.smoke else GRID
    reps = args.reps if args.reps is not None else (2 if args.smoke else 3)
    print(f"engine speed: {len(grid)} points, best of {reps} reps each")
    rows, mismatches = run_grid(grid, reps)

    if mismatches:
        print(f"FAIL: engines disagree on {len(mismatches)} points:")
        for spec in mismatches:
            print(f"  {spec}")
        return 1

    event_total = sum(r["event_s"] for r in rows)
    dag_total = sum(r["dag_s"] for r in rows)
    speedups = [r["speedup"] for r in rows]
    aggregate = {
        "event_points_per_sec": len(rows) / event_total,
        "dag_points_per_sec": len(rows) / dag_total,
        "speedup": event_total / dag_total,
        "per_point_min": min(speedups),
        "per_point_median": statistics.median(speedups),
        "per_point_max": max(speedups),
    }
    print(
        f"aggregate: event {aggregate['event_points_per_sec']:.2f} pts/s, "
        f"dag {aggregate['dag_points_per_sec']:.2f} pts/s -> "
        f"{aggregate['speedup']:.2f}x "
        f"(per-point min {aggregate['per_point_min']:.2f}x / "
        f"median {aggregate['per_point_median']:.2f}x / "
        f"max {aggregate['per_point_max']:.2f}x)"
    )

    if args.smoke:
        # the gate: identical results (checked above) and a real speedup.
        # The bar is deliberately below the steady-state ratio so scheduler
        # noise on shared runners cannot flake the job.
        if aggregate["speedup"] < 1.2:
            print("FAIL: DAG engine is not meaningfully faster (< 1.2x)")
            return 1
        print("smoke ok: engines identical, DAG faster")
        return 0

    out = Path(args.out) if args.out else (
        Path(__file__).resolve().parent.parent / "BENCH_fastpath.json"
    )
    doc = {
        "benchmark": "dag-fastpath-vs-event-loop",
        "python": sys.version.split()[0],
        "reps": reps,
        "protocol": "best-of-reps wall time of run_point per engine; "
                    "bit-identical results asserted per point",
        "points": rows,
        "aggregate": aggregate,
    }
    out.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Engine speed benchmark: event loop vs DAG fast path vs batch engine.

Times ``repro.bench.microbench.run_point`` wall-clock for both scalar
engines on a fixed planner-backed grid, asserts the results are
bit-identical, and records per-point and aggregate speedups in
``BENCH_fastpath.json`` at the repository root — the provenance for the
numbers quoted in DESIGN.md.

``--batch`` switches to the column benchmark: full message-size axes
(eighth-octave, 16 B to 512 KB — 121 sizes) on representative registry
columns, timed through the event loop (per point), the DAG engine (per
point) and the batch engine (one ``evaluate_column`` call), with
bit-identity asserted per (point, size).  Per-column and aggregate
points/sec land in ``BENCH_batch.json``.

Every rep is a complete fresh evaluation (world construction included);
``best-of-N`` wall times are reported because the shared CI boxes are
noisy.  Planner ``lru_cache``s — and, for the batch engine, the lowering
cache — are warm after the first rep on both sides, the same steady state
a figure sweep runs in.

Usage::

    python benchmarks/bench_speed.py                 # full grid -> JSON
    python benchmarks/bench_speed.py --smoke         # CI gate: tiny grid,
                                                     # exit 1 unless the DAG
                                                     # engine is faster
    python benchmarks/bench_speed.py --native        # scalar grid with the
                                                     # JIT replay kernel ->
                                                     # BENCH_native.json
    python benchmarks/bench_speed.py --native --smoke# CI gate: tiny grid,
                                                     # exit 1 unless native
                                                     # is bit-identical and
                                                     # (under numba) >= 10x
                                                     # the DAG engine
    python benchmarks/bench_speed.py --batch         # column grid -> JSON
    python benchmarks/bench_speed.py --batch --smoke # CI gate: one column,
                                                     # exit 1 unless batch
                                                     # beats dag
    python benchmarks/bench_speed.py --native-batch  # column grid with the
                                                     # JIT vector-clock
                                                     # kernel ->
                                                     # BENCH_native_batch.json
    python benchmarks/bench_speed.py --native-batch --smoke
                                                     # CI gate: one column,
                                                     # exit 1 unless
                                                     # bit-identical and
                                                     # (under numba) >= 3x
                                                     # the batch engine
    python benchmarks/bench_speed.py --store         # cached-column read
                                                     # throughput, shards vs
                                                     # per-file JSON ->
                                                     # BENCH_store.json
    python benchmarks/bench_speed.py --store --smoke # CI gate: exit 1
                                                     # unless store >= 2x
    python benchmarks/bench_speed.py --serve         # warm daemon vs cold
                                                     # CLI latency ->
                                                     # BENCH_serve.json
    python benchmarks/bench_speed.py --serve --smoke # CI gate: exit 1
                                                     # unless warm >= 2x

(The file matches the ``bench_*.py`` pytest glob but defines no tests; it
is a command-line tool.)
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path

from repro.bench.microbench import run_point

#: (library, collective, nodes, ppn, msg_bytes) — a representative slice of
#: the planner-backed surface: every registry library, all three
#: collectives, small/medium/large sizes, two node shapes.
GRID = (
    ("PiP-MColl", "scatter", 4, 8, 16384),
    ("PiP-MColl", "allgather", 4, 8, 512),
    ("PiP-MColl", "allgather", 4, 8, 65536),
    ("PiP-MColl", "allreduce", 4, 8, 512),
    ("PiP-MColl", "allreduce", 4, 8, 65536),
    ("PiP-MColl", "allreduce", 4, 8, 262144),
    ("PiP-MColl-small", "allreduce", 4, 8, 32768),
    ("PiP-MColl-small", "allgather", 2, 16, 8192),
    ("PiP-MPICH", "allgather", 4, 8, 512),
    ("PiP-MPICH", "allgather", 4, 8, 131072),
    ("OpenMPI", "allgather", 4, 8, 65536),
    ("OpenMPI", "allgather", 2, 16, 4096),
)

SMOKE_GRID = (
    ("PiP-MColl", "allreduce", 2, 4, 512),
    ("PiP-MColl", "allgather", 2, 4, 32768),
    ("PiP-MPICH", "allgather", 2, 4, 4096),
)

#: (library, collective, nodes, ppn) — the column benchmark sweeps the
#: full size axis for each of these.  One column per registry library,
#: plus the collective spread on the paper's own library.
BATCH_COLUMNS = (
    ("PiP-MColl", "scatter", 4, 8),
    ("PiP-MColl", "allgather", 4, 8),
    ("PiP-MColl", "allreduce", 4, 8),
    ("PiP-MPICH", "allgather", 2, 8),
    ("OpenMPI", "allgather", 2, 16),
)

#: eighth-octave axis, 16 B .. 512 KB — denser than any figure needs, the
#: regime the batch engine exists for (121 sizes, one pass)
BATCH_AXIS = tuple(sorted({int(16 * 2 ** (k / 8)) for k in range(121)}))

BATCH_SMOKE_COLUMNS = (("PiP-MColl", "allgather", 2, 4),)
BATCH_SMOKE_AXIS = tuple(sorted({int(16 * 2 ** (k / 4)) for k in range(33)}))


def parse_columns(text: str):
    """Parse ``--columns "PiP-MColl/allgather/2x4,..."`` into column specs."""
    specs = []
    for item in text.split(","):
        item = item.strip()
        if not item:
            continue
        parts = item.split("/")
        if len(parts) != 3 or "x" not in parts[2]:
            raise ValueError(
                f"bad column spec {item!r}; expected LIB/COLLECTIVE/NxP"
            )
        lib, coll, shape = parts
        nodes_text, ppn_text = shape.split("x", 1)
        specs.append((lib, coll, int(nodes_text), int(ppn_text)))
    if not specs:
        raise ValueError("--columns selected no columns")
    return tuple(specs)


def _time_point(spec, engine: str, reps: int) -> tuple[float, object]:
    """Best-of-``reps`` wall seconds for one fresh-world evaluation."""
    lib, coll, nodes, ppn, nbytes = spec
    best = float("inf")
    result = None
    for _ in range(reps):
        t0 = time.perf_counter()
        result = run_point(lib, coll, nodes, ppn, nbytes, engine=engine)
        best = min(best, time.perf_counter() - t0)
    return best, result


def run_grid(grid, reps: int):
    """Measure every point on both engines; returns (rows, mismatches)."""
    rows = []
    mismatches = []
    for spec in grid:
        event_s, event_res = _time_point(spec, "event", reps)
        dag_s, dag_res = _time_point(spec, "dag", reps)
        if event_res != dag_res:
            mismatches.append(spec)
        lib, coll, nodes, ppn, nbytes = spec
        rows.append({
            "library": lib,
            "collective": coll,
            "nodes": nodes,
            "ppn": ppn,
            "msg_bytes": nbytes,
            "event_s": event_s,
            "dag_s": dag_s,
            "speedup": event_s / dag_s,
        })
        print(
            f"  {lib:>15} {coll:<9} {nodes}x{ppn:<2} {nbytes:>6}B  "
            f"event {event_s * 1e3:8.2f}ms  dag {dag_s * 1e3:8.2f}ms  "
            f"{event_s / dag_s:5.2f}x",
            flush=True,
        )
    return rows, mismatches


def _time_column(spec, axis, engine: str, reps: int):
    """Best-of-``reps`` wall seconds for one full-axis column sweep."""
    from repro.sched.batch import evaluate_column

    lib, coll, nodes, ppn = spec
    best = float("inf")
    results = None
    for _ in range(reps):
        t0 = time.perf_counter()
        if engine == "batch":
            col = evaluate_column(lib, coll, nodes, ppn, axis)
            results = {
                s: (r.samples, r.internode_messages)
                for s, r in col.results.items()
            }
        else:
            results = {}
            for s in axis:
                r = run_point(lib, coll, nodes, ppn, s, engine=engine)
                results[s] = (r.samples, r.internode_messages)
        best = min(best, time.perf_counter() - t0)
    return best, results


def run_batch_grid(columns, axis, reps: int, with_event: bool):
    """Time every column on each engine; returns (rows, mismatch specs)."""
    rows = []
    mismatches = []
    for spec in columns:
        lib, coll, nodes, ppn = spec
        dag_s, dag_res = _time_column(spec, axis, "dag", reps)
        batch_s, batch_res = _time_column(spec, axis, "batch", reps)
        bad = [s for s in axis if batch_res[s] != dag_res[s]]
        if bad:
            mismatches.append((spec, bad))
        row = {
            "library": lib,
            "collective": coll,
            "nodes": nodes,
            "ppn": ppn,
            "sizes": len(axis),
            "dag_s": dag_s,
            "batch_s": batch_s,
            "batch_vs_dag": dag_s / batch_s,
        }
        line = (
            f"  {lib:>15} {coll:<9} {nodes}x{ppn:<2} {len(axis)} sizes  "
            f"dag {dag_s * 1e3:8.1f}ms  batch {batch_s * 1e3:8.1f}ms  "
            f"{dag_s / batch_s:5.2f}x"
        )
        if with_event:
            event_s, event_res = _time_column(spec, axis, "event", reps)
            if any(event_res[s] != dag_res[s] for s in axis):
                mismatches.append((spec, ["event-vs-dag"]))
            row["event_s"] = event_s
            row["batch_vs_event"] = event_s / batch_s
            line += f"  ({event_s / batch_s:5.1f}x vs event)"
        rows.append(row)
        print(line, flush=True)
    return rows, mismatches


def _time_analytic_column(spec, axis, reps: int):
    """Best-of-``reps`` wall seconds for one closed-form axis evaluation."""
    from repro.sched.analytic import evaluate_axis

    lib, coll, nodes, ppn = spec
    best = float("inf")
    col = None
    for _ in range(reps):
        t0 = time.perf_counter()
        col = evaluate_axis(lib, coll, nodes, ppn, axis)
        best = min(best, time.perf_counter() - t0)
    return best, col


def run_analytic_mode(args) -> int:
    """``--analytic``: closed-form tier vs the DAG engine on full axes.

    No bit-identity (the analytic tier is approximate); instead the
    per-column maximum relative error vs DAG is recorded and checked
    against the documented bound.
    """
    from repro.sched.analytic import ERROR_BOUND

    if args.columns:
        columns = parse_columns(args.columns)
    else:
        columns = BATCH_SMOKE_COLUMNS if args.smoke else BATCH_COLUMNS
    axis = BATCH_SMOKE_AXIS if args.smoke else BATCH_AXIS
    reps = args.reps if args.reps is not None else (2 if args.smoke else 3)
    print(
        f"analytic speed: {len(columns)} columns x {len(axis)} sizes, "
        f"best of {reps} reps each"
    )
    rows = []
    violations = []
    for spec in columns:
        lib, coll, nodes, ppn = spec
        dag_s, dag_res = _time_column(spec, axis, "dag", reps)
        an_s, col = _time_analytic_column(spec, axis, reps)
        errs = [
            abs(col.results[s].time / dag_res[s][0][-1] - 1.0) for s in axis
        ]
        max_err = max(errs)
        if max_err >= ERROR_BOUND:
            violations.append((spec, max_err))
        rows.append({
            "library": lib,
            "collective": coll,
            "nodes": nodes,
            "ppn": ppn,
            "sizes": len(axis),
            "dag_s": dag_s,
            "analytic_s": an_s,
            "analytic_vs_dag": dag_s / an_s,
            "max_rel_err": max_err,
            "median_rel_err": statistics.median(errs),
        })
        print(
            f"  {lib:>15} {coll:<9} {nodes}x{ppn:<2} {len(axis)} sizes  "
            f"dag {dag_s * 1e3:8.1f}ms  analytic {an_s * 1e3:8.3f}ms  "
            f"{dag_s / an_s:7.0f}x  (max err {max_err:.1%})",
            flush=True,
        )
    if violations:
        print(f"FAIL: error bound ({ERROR_BOUND:.0%}) violated:")
        for spec, err in violations:
            print(f"  {spec}: {err:.1%}")
        return 1

    npoints = sum(r["sizes"] for r in rows)
    dag_total = sum(r["dag_s"] for r in rows)
    an_total = sum(r["analytic_s"] for r in rows)
    aggregate = {
        "points": npoints,
        "dag_points_per_sec": npoints / dag_total,
        "analytic_points_per_sec": npoints / an_total,
        "analytic_vs_dag": dag_total / an_total,
        "max_rel_err": max(r["max_rel_err"] for r in rows),
        "error_bound": ERROR_BOUND,
    }
    print(
        f"aggregate: dag {aggregate['dag_points_per_sec']:.1f} pts/s, "
        f"analytic {aggregate['analytic_points_per_sec']:.0f} pts/s -> "
        f"{aggregate['analytic_vs_dag']:.0f}x vs dag "
        f"(max rel err {aggregate['max_rel_err']:.1%})"
    )

    if args.smoke:
        if aggregate["analytic_vs_dag"] < 50:
            print("FAIL: analytic tier under 50x vs dag")
            return 1
        print("smoke ok: analytic within error bound and >= 50x vs dag")
        return 0

    out = Path(args.out) if args.out else (
        Path(__file__).resolve().parent.parent / "BENCH_analytic.json"
    )
    doc = {
        "benchmark": "analytic-closed-form-vs-dag-engine",
        "python": sys.version.split()[0],
        "reps": reps,
        "protocol": (
            "best-of-reps wall time per column; axis = eighth-octave "
            "16B..512KB (121 sizes); dag = one fresh run_point per size, "
            "analytic = one vectorized evaluate_axis call; approximate "
            "tier - per-size relative error vs dag recorded and gated at "
            "the documented bound instead of bit-identity"
        ),
        "columns": rows,
        "aggregate": aggregate,
    }
    out.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"wrote {out}")
    return 0


#: the column the store benchmark reads back (any planner-backed column
#: works; the measurement is pure cache I/O, not simulation)
STORE_COLUMN = ("PiP-MColl", "allgather", 4, 8)
STORE_SMOKE_COLUMN = ("PiP-MColl", "allgather", 2, 4)


def run_store_mode(args) -> int:
    """``--store``: cached-column read throughput, shards vs per-file JSON.

    Evaluates one full-axis column once (batch engine), persists it both
    ways — the columnar shard store and the pre-1.4.0 one-JSON-file-per-
    point layout (reconstructed locally as the baseline; the production
    JSON fallback was removed in 1.5.0) — then times reading every point
    back from cold cache objects.  Bit-identity of both read paths is
    asserted; the points/sec ratio lands in ``BENCH_store.json`` (the
    provenance for the >= 5x store-vs-JSON figure in DESIGN.md).
    """
    import shutil
    import tempfile

    from repro.bench.runner.cache import (
        CACHE_EPOCH,
        ResultCache,
        cache_key,
        result_from_doc,
        result_to_doc,
    )
    from repro.bench.runner.points import Point
    from repro.bench.runner.pool import run_sweep_column

    def json_point_path(root, key):
        return root / key[:2] / f"{key}.json"

    def write_json_point(root, point, result):
        # the pre-1.4.0 per-point layout, byte for byte
        path = json_point_path(root, cache_key(point))
        path.parent.mkdir(parents=True, exist_ok=True)
        doc = {"version": CACHE_EPOCH, **result_to_doc(result)}
        path.write_bytes(json.dumps(doc, separators=(",", ":")).encode())

    spec = STORE_SMOKE_COLUMN if args.smoke else STORE_COLUMN
    axis = BATCH_SMOKE_AXIS if args.smoke else BATCH_AXIS
    reps = args.reps if args.reps is not None else (3 if args.smoke else 5)
    lib, coll, nodes, ppn = spec
    points = [
        Point(lib, coll, nodes, ppn, s, engine="batch") for s in axis
    ]
    print(
        f"store speed: {lib} {coll} {nodes}x{ppn}, {len(axis)}-size axis, "
        f"best of {reps} reps each"
    )
    results = run_sweep_column(points)

    workdir = Path(tempfile.mkdtemp(prefix="bench_store_"))
    try:
        # populate both layouts (timed once each: write-side comparison)
        json_root = workdir / "json"
        t0 = time.perf_counter()
        for p, r in zip(points, results):
            write_json_point(json_root, p, r)
        json_write_s = time.perf_counter() - t0

        store_root = workdir / "store"
        writer = ResultCache(store_root)
        t0 = time.perf_counter()
        writer.put_many(points, results)
        store_write_s = time.perf_counter() - t0

        # read-side: fresh cache objects per rep (cold in-memory index;
        # the OS page cache is warm on both sides).  The JSON loop is the
        # faithful pre-1.4.0 ``ResultCache.get`` path: hash the point spec
        # into its key, then stat+open+parse that point's file — the old
        # layout had no column grouping, so it paid the spec hash on
        # every point of every read.  The store path pays its (memoized)
        # column hash inside ``get_many`` just like real sweeps do.
        json_read_s = float("inf")
        for _ in range(reps):
            t0 = time.perf_counter()
            json_back = [
                result_from_doc(
                    json.loads(
                        json_point_path(json_root, cache_key(p)).read_bytes()
                    )
                )
                for p in points
            ]
            json_read_s = min(json_read_s, time.perf_counter() - t0)

        store_read_s = float("inf")
        for _ in range(reps):
            reader = ResultCache(store_root)
            t0 = time.perf_counter()
            store_back = reader.get_many(points)
            store_read_s = min(store_read_s, time.perf_counter() - t0)

        if json_back != results or store_back != results:
            print("FAIL: read-back is not bit-identical to the computed "
                  "column")
            return 1
        shard_count = ResultCache(store_root).store.shard_count()
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    npoints = len(axis)
    aggregate = {
        "points": npoints,
        "json_points_per_sec": npoints / json_read_s,
        "store_points_per_sec": npoints / store_read_s,
        "store_vs_json": json_read_s / store_read_s,
        "json_write_s": json_write_s,
        "store_write_s": store_write_s,
    }
    print(
        f"  json   read {json_read_s * 1e3:8.2f}ms "
        f"({aggregate['json_points_per_sec']:10.0f} pts/s, "
        f"{npoints} files)  write {json_write_s * 1e3:8.2f}ms"
    )
    print(
        f"  store  read {store_read_s * 1e3:8.2f}ms "
        f"({aggregate['store_points_per_sec']:10.0f} pts/s, "
        f"{shard_count} shards)  write {store_write_s * 1e3:8.2f}ms"
    )
    print(
        f"aggregate: store {aggregate['store_vs_json']:.1f}x vs per-file "
        f"JSON on cached-column reads"
    )

    if args.smoke:
        # the full-axis committed figure is >= 5x; the smoke axis is
        # shorter (fixed per-read overheads weigh more), so gate lower —
        # high enough that a real layout regression still fails
        if aggregate["store_vs_json"] < 2.0:
            print("FAIL: store reads under 2x the per-file JSON baseline")
            return 1
        print("smoke ok: read-back bit-identical, store faster than JSON")
        return 0

    out = Path(args.out) if args.out else (
        Path(__file__).resolve().parent.parent / "BENCH_store.json"
    )
    doc = {
        "benchmark": "columnar-store-vs-per-file-json-cache",
        "python": sys.version.split()[0],
        "reps": reps,
        "protocol": (
            "one full-axis column evaluated once (batch engine), persisted "
            "as columnar npz shards and as the legacy one-JSON-file-per-"
            "point layout; best-of-reps wall time reading every point back "
            "through a cold cache object per rep; bit-identical read-back "
            "asserted on both paths"
        ),
        "column": {
            "library": lib, "collective": coll, "nodes": nodes, "ppn": ppn,
            "sizes": npoints,
        },
        "aggregate": aggregate,
    }
    out.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"wrote {out}")
    return 0


#: the column the serve benchmark sweeps — reuse the store benchmark's
#: planner-backed column; the measurement is daemon amortization, not
#: simulation speed
SERVE_COLUMN = STORE_COLUMN
SERVE_SMOKE_COLUMN = STORE_SMOKE_COLUMN

#: the cold baseline: what one CLI invocation of the sweep actually costs —
#: interpreter start, imports, world construction, evaluation — run as a
#: real child process, results printed for the bit-identity check
_COLD_CHILD = """\
import json, sys
from repro.bench.runner import Point, SweepRunner
from repro.serve.protocol import result_to_doc
lib, coll = sys.argv[1], sys.argv[2]
nodes, ppn = int(sys.argv[3]), int(sys.argv[4])
points = [
    Point(lib, coll, nodes, ppn, int(s), engine="batch")
    for s in sys.argv[5].split(",")
]
results = SweepRunner(jobs=1, use_cache=False).run(points)
json.dump([result_to_doc(r) for r in results], sys.stdout)
"""


def run_serve_mode(args) -> int:
    """``--serve``: warm-daemon sweep latency vs the cold-CLI baseline.

    Cold = a fresh ``python`` child per rep running the column through
    ``SweepRunner`` (the pre-daemon workflow: every invocation pays
    interpreter start, imports and evaluation).  Warm = one resident
    ``python -m repro.serve`` daemon on a unix socket, already warmed by
    a first sweep, answering the same column over the wire from its
    in-memory cache.  Bit-identity of cold child, warm daemon and the
    in-process runner is asserted; the latency ratio lands in
    ``BENCH_serve.json``.
    """
    import os
    import shutil
    import subprocess
    import tempfile

    from repro.bench.runner import Point, SweepRunner
    from repro.serve import SweepClient, wait_until_ready
    from repro.serve.protocol import result_from_doc

    spec = SERVE_SMOKE_COLUMN if args.smoke else SERVE_COLUMN
    axis = BATCH_SMOKE_AXIS if args.smoke else BATCH_AXIS
    reps = args.reps if args.reps is not None else (3 if args.smoke else 5)
    lib, coll, nodes, ppn = spec
    points = [
        Point(lib, coll, nodes, ppn, s, engine="batch") for s in axis
    ]
    print(
        f"serve speed: {lib} {coll} {nodes}x{ppn}, {len(axis)}-size axis, "
        f"best of {reps} reps each"
    )
    reference = SweepRunner(jobs=1, use_cache=False).run(points)

    root = Path(__file__).resolve().parent.parent
    env = dict(os.environ)
    src = str(root / "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"]
        if env.get("PYTHONPATH") else src
    )
    sizes_arg = ",".join(str(s) for s in axis)

    cold_s = float("inf")
    cold_back = None
    for _ in range(reps):
        t0 = time.perf_counter()
        out = subprocess.run(
            [sys.executable, "-c", _COLD_CHILD,
             lib, coll, str(nodes), str(ppn), sizes_arg],
            env=env, cwd=root, capture_output=True, text=True, check=True,
        ).stdout
        cold_s = min(cold_s, time.perf_counter() - t0)
        cold_back = [result_from_doc(d) for d in json.loads(out)]

    workdir = Path(tempfile.mkdtemp(prefix="bench_serve_"))
    proc = None
    try:
        sock = str(workdir / "daemon.sock")
        t0 = time.perf_counter()
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.serve", "--listen", sock,
             "--jobs", "1", "--cache-dir", str(workdir / "cache")],
            env=env, cwd=root, stderr=subprocess.DEVNULL,
        )
        wait_until_ready(sock, deadline=30.0)
        startup_s = time.perf_counter() - t0

        with SweepClient(sock) as client:
            t0 = time.perf_counter()
            warming = client.sweep(points)  # first contact: evaluates
            warming_s = time.perf_counter() - t0
            warm_s = float("inf")
            for _ in range(reps):
                t0 = time.perf_counter()
                warm_back = client.sweep(points)  # steady state: hits
                warm_s = min(warm_s, time.perf_counter() - t0)
            stats = client.stats()["daemon"]
            client.shutdown()
        proc.wait(timeout=30)
        proc = None
    finally:
        if proc is not None and proc.poll() is None:
            proc.kill()
        shutil.rmtree(workdir, ignore_errors=True)

    if not (cold_back == warming == warm_back == reference):
        print("FAIL: daemon results are not bit-identical to the "
              "cold CLI / in-process runner")
        return 1
    if stats["evaluations"] != 1:
        print(f"FAIL: warm repeats re-evaluated "
              f"(evaluations={stats['evaluations']}, expected 1)")
        return 1

    npoints = len(axis)
    aggregate = {
        "points": npoints,
        "cold_cli_s": cold_s,
        "warm_daemon_s": warm_s,
        "warm_vs_cold": cold_s / warm_s,
        "daemon_startup_s": startup_s,
        "first_sweep_s": warming_s,
        "warm_points_per_sec": npoints / warm_s,
    }
    print(
        f"  cold CLI    {cold_s * 1e3:8.1f}ms per sweep "
        f"(fresh interpreter + evaluation)"
    )
    print(
        f"  warm daemon {warm_s * 1e3:8.1f}ms per sweep "
        f"({aggregate['warm_points_per_sec']:10.0f} pts/s; startup "
        f"{startup_s * 1e3:.0f}ms, first sweep {warming_s * 1e3:.0f}ms)"
    )
    print(
        f"aggregate: warm daemon {aggregate['warm_vs_cold']:.1f}x vs cold "
        f"CLI on repeated column sweeps"
    )

    floor = 2.0 if args.smoke else 5.0
    if aggregate["warm_vs_cold"] < floor:
        print(f"FAIL: warm daemon under {floor:.0f}x the cold-CLI baseline")
        return 1
    if args.smoke:
        print("smoke ok: bit-identical over the wire, daemon >= 2x cold CLI")
        return 0

    out = Path(args.out) if args.out else (root / "BENCH_serve.json")
    doc = {
        "benchmark": "warm-serve-daemon-vs-cold-cli-sweep",
        "python": sys.version.split()[0],
        "reps": reps,
        "protocol": (
            "cold = best-of-reps wall time of a fresh python child running "
            "the column through SweepRunner (interpreter start + imports + "
            "evaluation); warm = best-of-reps wall time of client.sweep "
            "against a resident python -m repro.serve daemon on a unix "
            "socket after one warming sweep (in-memory cache hits over the "
            "wire); bit-identical results asserted across cold child, warm "
            "daemon and the in-process runner"
        ),
        "column": {
            "library": lib, "collective": coll, "nodes": nodes, "ppn": ppn,
            "sizes": npoints,
        },
        "daemon_stats": {
            k: stats[k] for k in (
                "requests", "sweeps", "points", "hits", "misses",
                "coalesced", "evaluations",
            )
        },
        "aggregate": aggregate,
    }
    out.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"wrote {out}")
    return 0


def run_native_mode(args) -> int:
    """``--native``: the JIT replay kernel vs the DAG and event engines.

    Same grid and protocol as the scalar benchmark, with the native tier
    added.  Kernels are warmed once up front (LLVM compilation is a
    one-time cost sweeps also pay once), then every point is timed as a
    complete fresh evaluation on all three engines with bit-identity
    asserted.  The recorded document carries ``kernel_mode`` — ``"jit"``
    on numba installs, ``"interp"`` where numba is absent and the
    benchmark times the pure-Python twin of the kernel instead (same
    bits, none of the speed; the committed >= 10x figure is a JIT-mode
    number and the smoke gate only enforces it under JIT).
    """
    from repro.sched import native

    mode = native.warm_kernels()
    use_run_point = native.native_available()

    def time_native(spec, reps):
        lib, coll, nodes, ppn, nbytes = spec
        best = float("inf")
        result = None
        for _ in range(reps):
            t0 = time.perf_counter()
            if use_run_point:
                r = run_point(lib, coll, nodes, ppn, nbytes, engine="native")
                result = (r.samples, r.internode_messages)
            else:
                r = native.evaluate_point(lib, coll, nodes, ppn, nbytes,
                                          force_interp=True)
                result = (r.samples, r.internode_messages)
            best = min(best, time.perf_counter() - t0)
        return best, result

    grid = SMOKE_GRID if args.smoke else GRID
    reps = args.reps if args.reps is not None else (2 if args.smoke else 3)
    print(
        f"native kernel speed ({mode} mode): {len(grid)} points, "
        f"best of {reps} reps each"
    )
    rows = []
    mismatches = []
    for spec in grid:
        event_s, event_res = _time_point(spec, "event", reps)
        dag_s, dag_res = _time_point(spec, "dag", reps)
        native_s, native_res = time_native(spec, reps)
        if event_res != dag_res:
            mismatches.append((spec, "event-vs-dag"))
        if native_res != (dag_res.samples, dag_res.internode_messages):
            mismatches.append((spec, "native-vs-dag"))
        lib, coll, nodes, ppn, nbytes = spec
        rows.append({
            "library": lib,
            "collective": coll,
            "nodes": nodes,
            "ppn": ppn,
            "msg_bytes": nbytes,
            "event_s": event_s,
            "dag_s": dag_s,
            "native_s": native_s,
            "native_vs_dag": dag_s / native_s,
            "native_vs_event": event_s / native_s,
        })
        print(
            f"  {lib:>15} {coll:<9} {nodes}x{ppn:<2} {nbytes:>6}B  "
            f"dag {dag_s * 1e3:8.2f}ms  native {native_s * 1e3:8.2f}ms  "
            f"{dag_s / native_s:6.2f}x vs dag  "
            f"({event_s / native_s:7.2f}x vs event)",
            flush=True,
        )

    if mismatches:
        print(f"FAIL: engines disagree on {len(mismatches)} points:")
        for spec, which in mismatches:
            print(f"  {spec}: {which}")
        return 1

    npoints = len(rows)
    event_total = sum(r["event_s"] for r in rows)
    dag_total = sum(r["dag_s"] for r in rows)
    native_total = sum(r["native_s"] for r in rows)
    ratios = [r["native_vs_dag"] for r in rows]
    aggregate = {
        "points": npoints,
        "kernel_mode": mode,
        "event_points_per_sec": npoints / event_total,
        "dag_points_per_sec": npoints / dag_total,
        "native_points_per_sec": npoints / native_total,
        "native_vs_dag": dag_total / native_total,
        "native_vs_event": event_total / native_total,
        "per_point_min": min(ratios),
        "per_point_median": statistics.median(ratios),
        "per_point_max": max(ratios),
    }
    print(
        f"aggregate ({mode}): dag {aggregate['dag_points_per_sec']:.1f} "
        f"pts/s, native {aggregate['native_points_per_sec']:.1f} pts/s -> "
        f"{aggregate['native_vs_dag']:.2f}x vs dag, "
        f"{aggregate['native_vs_event']:.1f}x vs event "
        f"(per-point min {aggregate['per_point_min']:.2f}x / "
        f"median {aggregate['per_point_median']:.2f}x / "
        f"max {aggregate['per_point_max']:.2f}x)"
    )

    if args.smoke:
        if mode == "jit":
            # the acceptance bar: the JIT kernel must hold a real order-
            # of-magnitude over the DAG replay on the smoke grid too
            if aggregate["native_vs_dag"] < 10.0:
                print("FAIL: native kernel under 10x the DAG engine")
                return 1
            print("smoke ok: bit-identical, native >= 10x dag (jit)")
        else:
            # no numba: the interp twin proves identity, not speed —
            # gating on throughput here would test the wrong thing
            print("smoke ok: bit-identical (interp mode; speed gate "
                  "needs numba)")
        return 0

    out = Path(args.out) if args.out else (
        Path(__file__).resolve().parent.parent / "BENCH_native.json"
    )
    doc = {
        "benchmark": "native-jit-kernel-vs-dag-and-event-engines",
        "python": sys.version.split()[0],
        "kernel_mode": mode,
        "reps": reps,
        "protocol": (
            "kernels warmed once up front (one-time LLVM compile excluded, "
            "as in real sweeps); best-of-reps wall time of one fresh "
            "evaluation per engine per point; bit-identical samples and "
            "message counts asserted per point; kernel_mode records "
            "whether numba JIT-compiled the kernels ('jit') or the "
            "pure-Python interp twin was timed ('interp' - same bits, "
            "not representative of native speed)"
        ),
        "points": rows,
        "aggregate": aggregate,
    }
    out.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"wrote {out}")
    return 0


def run_native_batch_mode(args) -> int:
    """``--native-batch``: the JIT vector-clock column kernel vs the
    pure-Python batch engine.

    Same columns and protocol as ``--batch``, compared pairwise: each
    full-axis column is evaluated by ``repro.sched.batch`` (the
    pure-Python batchline) and by ``repro.sched.native_batch`` (the
    array replay kernel), with bit-identity asserted per (point, size).
    Kernels are warmed once up front.  The recorded document carries
    ``kernel_mode`` — ``"jit"`` on numba installs, ``"interp"`` where
    numba is absent and the pure-Python twin of the kernel is timed
    instead (same bits, none of the speed; the committed >= 3x figure is
    a JIT-mode number and the smoke gate only enforces it under JIT).
    """
    from repro.sched import native_batch
    from repro.sched.batch import clear_lowering_cache
    from repro.sched.batch import evaluate_column as batch_column

    mode = native_batch.warm_kernels()
    clear_lowering_cache()

    if args.columns:
        columns = parse_columns(args.columns)
    else:
        columns = BATCH_SMOKE_COLUMNS if args.smoke else BATCH_COLUMNS
    axis = BATCH_SMOKE_AXIS if args.smoke else BATCH_AXIS
    reps = args.reps if args.reps is not None else (2 if args.smoke else 3)
    print(
        f"native column kernel speed ({mode} mode): {len(columns)} columns "
        f"x {len(axis)} sizes, best of {reps} reps each"
    )

    def time_column(evaluate, spec):
        lib, coll, nodes, ppn = spec
        best = float("inf")
        col = None
        for _ in range(reps):
            t0 = time.perf_counter()
            col = evaluate(lib, coll, nodes, ppn, axis)
            best = min(best, time.perf_counter() - t0)
        return best, col

    rows = []
    mismatches = []
    bailouts = 0
    for spec in columns:
        lib, coll, nodes, ppn = spec
        batch_s, batch_col = time_column(batch_column, spec)
        native_s, native_col = time_column(
            native_batch.evaluate_column, spec)
        bad = [
            s for s in axis
            if native_col.results[s] != batch_col.results[s]
        ]
        if bad:
            mismatches.append((spec, bad))
        bailouts += native_col.stats.native_bailouts
        rows.append({
            "library": lib,
            "collective": coll,
            "nodes": nodes,
            "ppn": ppn,
            "sizes": len(axis),
            "batch_s": batch_s,
            "native_batch_s": native_s,
            "native_batch_vs_batch": batch_s / native_s,
            "native_bailouts": native_col.stats.native_bailouts,
        })
        print(
            f"  {lib:>15} {coll:<9} {nodes}x{ppn:<2} {len(axis)} sizes  "
            f"batch {batch_s * 1e3:8.1f}ms  native "
            f"{native_s * 1e3:8.1f}ms  {batch_s / native_s:5.2f}x",
            flush=True,
        )

    if mismatches:
        print(f"FAIL: engines disagree on {len(mismatches)} columns:")
        for spec, bad in mismatches:
            print(f"  {spec}: {bad[:8]}{'...' if len(bad) > 8 else ''}")
        return 1

    npoints = sum(r["sizes"] for r in rows)
    batch_total = sum(r["batch_s"] for r in rows)
    native_total = sum(r["native_batch_s"] for r in rows)
    ratios = [r["native_batch_vs_batch"] for r in rows]
    aggregate = {
        "points": npoints,
        "kernel_mode": mode,
        "batch_points_per_sec": npoints / batch_total,
        "native_batch_points_per_sec": npoints / native_total,
        "native_batch_vs_batch": batch_total / native_total,
        "native_bailouts": bailouts,
        "per_column_min": min(ratios),
        "per_column_median": statistics.median(ratios),
        "per_column_max": max(ratios),
    }
    print(
        f"aggregate ({mode}): batch "
        f"{aggregate['batch_points_per_sec']:.1f} pts/s, native-batch "
        f"{aggregate['native_batch_points_per_sec']:.1f} pts/s -> "
        f"{aggregate['native_batch_vs_batch']:.2f}x vs batch "
        f"(per-column min {aggregate['per_column_min']:.2f}x / "
        f"median {aggregate['per_column_median']:.2f}x / "
        f"max {aggregate['per_column_max']:.2f}x)"
    )

    if args.smoke:
        if mode == "jit":
            # the acceptance bar: the JIT column kernel must hold >= 3x
            # over the pure-Python batchline on the smoke column too
            if aggregate["native_batch_vs_batch"] < 3.0:
                print("FAIL: native batch kernel under 3x the pure "
                      "batch engine")
                return 1
            print("smoke ok: bit-identical, native-batch >= 3x batch (jit)")
        else:
            # no numba: the interp twin proves identity, not speed —
            # gating on throughput here would test the wrong thing
            print("smoke ok: bit-identical (interp mode; speed gate "
                  "needs numba)")
        return 0

    out = Path(args.out) if args.out else (
        Path(__file__).resolve().parent.parent / "BENCH_native_batch.json"
    )
    doc = {
        "benchmark": "native-batch-kernel-vs-pure-python-batch-engine",
        "python": sys.version.split()[0],
        "kernel_mode": mode,
        "reps": reps,
        "protocol": (
            "kernels warmed once up front (one-time LLVM compile excluded, "
            "as in real sweeps); best-of-reps wall time per column; axis = "
            "eighth-octave 16B..512KB (121 sizes); batch = one pure-Python "
            "evaluate_column over the axis, native-batch = the same column "
            "replayed by the array kernel of repro.sim.native_batchline; "
            "bit-identical samples and message counts asserted per (point, "
            "size); kernel_mode records whether numba JIT-compiled the "
            "kernel ('jit') or the pure-Python interp twin was timed "
            "('interp' - same bits, not representative of native speed)"
        ),
        "columns": rows,
        "aggregate": aggregate,
    }
    out.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"wrote {out}")
    return 0


def run_batch_mode(args) -> int:
    if args.columns:
        columns = parse_columns(args.columns)
    else:
        columns = BATCH_SMOKE_COLUMNS if args.smoke else BATCH_COLUMNS
    axis = BATCH_SMOKE_AXIS if args.smoke else BATCH_AXIS
    reps = args.reps if args.reps is not None else (2 if args.smoke else 3)
    with_event = not args.smoke
    print(
        f"column speed: {len(columns)} columns x {len(axis)} sizes, "
        f"best of {reps} reps each"
    )
    rows, mismatches = run_batch_grid(columns, axis, reps, with_event)

    if mismatches:
        print(f"FAIL: engines disagree on {len(mismatches)} columns:")
        for spec, bad in mismatches:
            print(f"  {spec}: {bad[:8]}{'...' if len(bad) > 8 else ''}")
        return 1

    npoints = sum(r["sizes"] for r in rows)
    dag_total = sum(r["dag_s"] for r in rows)
    batch_total = sum(r["batch_s"] for r in rows)
    ratios = [r["batch_vs_dag"] for r in rows]
    aggregate = {
        "points": npoints,
        "dag_points_per_sec": npoints / dag_total,
        "batch_points_per_sec": npoints / batch_total,
        "batch_vs_dag": dag_total / batch_total,
        "per_column_min": min(ratios),
        "per_column_median": statistics.median(ratios),
        "per_column_max": max(ratios),
    }
    if with_event:
        event_total = sum(r["event_s"] for r in rows)
        aggregate["event_points_per_sec"] = npoints / event_total
        aggregate["batch_vs_event"] = event_total / batch_total
    print(
        f"aggregate: dag {aggregate['dag_points_per_sec']:.1f} pts/s, "
        f"batch {aggregate['batch_points_per_sec']:.1f} pts/s -> "
        f"{aggregate['batch_vs_dag']:.2f}x vs dag "
        f"(per-column min {aggregate['per_column_min']:.2f}x / "
        f"median {aggregate['per_column_median']:.2f}x / "
        f"max {aggregate['per_column_max']:.2f}x)"
        + (
            f"; {aggregate['batch_vs_event']:.1f}x vs event"
            if with_event else ""
        )
    )

    if args.smoke:
        # same philosophy as the scalar gate: identity checked above, and
        # a bar low enough that runner noise cannot flake the job
        if aggregate["batch_vs_dag"] < 1.2:
            print("FAIL: batch engine is not meaningfully faster (< 1.2x)")
            return 1
        if args.check_regression:
            committed = json.loads(Path(args.check_regression).read_text())
            floor = 0.8 * committed["aggregate"]["batch_points_per_sec"]
            got = aggregate["batch_points_per_sec"]
            if got < floor:
                print(
                    f"FAIL: batch throughput regressed: {got:.1f} pts/s on "
                    f"the smoke column < 0.8x the committed figure "
                    f"({committed['aggregate']['batch_points_per_sec']:.1f})"
                )
                return 1
            print(
                f"regression gate ok: {got:.1f} pts/s >= "
                f"0.8x committed ({floor:.1f})"
            )
        print("smoke ok: engines identical, batch faster")
        return 0

    out = Path(args.out) if args.out else (
        Path(__file__).resolve().parent.parent / "BENCH_batch.json"
    )
    doc = {
        "benchmark": "batch-column-vs-scalar-engines",
        "python": sys.version.split()[0],
        "reps": reps,
        "protocol": (
            "best-of-reps wall time per column; axis = eighth-octave "
            "16B..512KB (121 sizes); dag/event = one fresh run_point per "
            "size, batch = one evaluate_column over the axis; bit-identical "
            "samples and message counts asserted per (point, size)"
        ),
        "columns": rows,
        "aggregate": aggregate,
    }
    out.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"wrote {out}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny grid, no JSON; exit 1 unless DAG beats the event loop "
             "on aggregate and results are bit-identical (the CI gate)",
    )
    parser.add_argument(
        "--batch", action="store_true",
        help="column benchmark: full size axes, event vs dag vs batch, "
             "-> BENCH_batch.json (with --smoke: one small column, exit 1 "
             "unless batch beats dag)",
    )
    parser.add_argument(
        "--native", action="store_true",
        help="native-kernel benchmark: scalar grid, event vs dag vs the "
             "JIT replay kernel -> BENCH_native.json (with --smoke: tiny "
             "grid, exit 1 unless bit-identical, and — under numba — "
             "native >= 10x dag)",
    )
    parser.add_argument(
        "--native-batch", action="store_true", dest="native_batch",
        help="native column-kernel benchmark: full size axes, the JIT "
             "vector-clock replay kernel vs the pure-Python batch engine "
             "-> BENCH_native_batch.json (with --smoke: one small column, "
             "exit 1 unless bit-identical, and — under numba — "
             "native-batch >= 3x batch)",
    )
    parser.add_argument(
        "--analytic", action="store_true",
        help="closed-form tier benchmark: full size axes, analytic vs dag, "
             "-> BENCH_analytic.json (with --smoke: one small column, exit "
             "1 unless analytic is within the error bound and >= 50x)",
    )
    parser.add_argument(
        "--store", action="store_true",
        help="cache-throughput benchmark: cached-column reads from the "
             "columnar shard store vs the per-file JSON layout "
             "-> BENCH_store.json (with --smoke: short axis, exit 1 "
             "unless the store beats JSON by 2x with bit-identical "
             "read-back)",
    )
    parser.add_argument(
        "--serve", action="store_true",
        help="daemon-amortization benchmark: warm repro.serve sweep "
             "latency vs a cold CLI child per sweep -> BENCH_serve.json "
             "(with --smoke: short axis, exit 1 unless the warm daemon "
             "beats the cold CLI by 2x with bit-identical results)",
    )
    parser.add_argument(
        "--columns", default=None, metavar="LIB/COLL/NxP,...",
        help="restrict the --batch/--analytic column grid, e.g. "
             "PiP-MColl/scatter/4x8,OpenMPI/allgather/2x16 (CI smoke "
             "uses this to run only the cheap columns)",
    )
    parser.add_argument(
        "--check-regression", default=None, metavar="BENCH_batch.json",
        help="with --batch --smoke: also fail if batch points/sec on the "
             "smoke column drops below 0.8x the committed aggregate figure "
             "in the given JSON",
    )
    parser.add_argument(
        "--reps", type=int, default=None,
        help="wall-clock reps per (point, engine); best is kept "
             "(default 3, smoke 2)",
    )
    parser.add_argument(
        "--out", default=None,
        help="output JSON path (default: BENCH_fastpath.json at repo root)",
    )
    args = parser.parse_args(argv)

    if args.serve:
        return run_serve_mode(args)
    if args.store:
        return run_store_mode(args)
    if args.native_batch:
        return run_native_batch_mode(args)
    if args.native:
        return run_native_mode(args)
    if args.analytic:
        return run_analytic_mode(args)
    if args.batch:
        return run_batch_mode(args)

    grid = SMOKE_GRID if args.smoke else GRID
    reps = args.reps if args.reps is not None else (2 if args.smoke else 3)
    print(f"engine speed: {len(grid)} points, best of {reps} reps each")
    rows, mismatches = run_grid(grid, reps)

    if mismatches:
        print(f"FAIL: engines disagree on {len(mismatches)} points:")
        for spec in mismatches:
            print(f"  {spec}")
        return 1

    event_total = sum(r["event_s"] for r in rows)
    dag_total = sum(r["dag_s"] for r in rows)
    speedups = [r["speedup"] for r in rows]
    aggregate = {
        "event_points_per_sec": len(rows) / event_total,
        "dag_points_per_sec": len(rows) / dag_total,
        "speedup": event_total / dag_total,
        "per_point_min": min(speedups),
        "per_point_median": statistics.median(speedups),
        "per_point_max": max(speedups),
    }
    print(
        f"aggregate: event {aggregate['event_points_per_sec']:.2f} pts/s, "
        f"dag {aggregate['dag_points_per_sec']:.2f} pts/s -> "
        f"{aggregate['speedup']:.2f}x "
        f"(per-point min {aggregate['per_point_min']:.2f}x / "
        f"median {aggregate['per_point_median']:.2f}x / "
        f"max {aggregate['per_point_max']:.2f}x)"
    )

    if args.smoke:
        # the gate: identical results (checked above) and a real speedup.
        # The bar is deliberately below the steady-state ratio so scheduler
        # noise on shared runners cannot flake the job.
        if aggregate["speedup"] < 1.2:
            print("FAIL: DAG engine is not meaningfully faster (< 1.2x)")
            return 1
        print("smoke ok: engines identical, DAG faster")
        return 0

    out = Path(args.out) if args.out else (
        Path(__file__).resolve().parent.parent / "BENCH_fastpath.json"
    )
    doc = {
        "benchmark": "dag-fastpath-vs-event-loop",
        "python": sys.version.split()[0],
        "reps": reps,
        "protocol": "best-of-reps wall time of run_point per engine; "
                    "bit-identical results asserted per point",
        "points": rows,
        "aggregate": aggregate,
    }
    out.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Fig. 11 — MPI_Allreduce, small double counts, five libraries.

The paper reports PiP-MColl fastest with up to a 31 % edge over the best
competitor.  This ordering needs realistic process counts: at the toy
``small`` scale the multi-object synchronisation overhead dominates and
PiP-MColl loses, exactly as §IV-B3's analysis predicts (see
EXPERIMENTS.md).
"""

from repro.bench.figures import fig11_allreduce_small

from _common import at_least_medium_scale, run_figure


def test_fig11_allreduce_small(benchmark):
    result = run_figure(benchmark, fig11_allreduce_small)
    if at_least_medium_scale():
        mcoll = result.series["PiP-MColl"]
        for lib, series in result.series.items():
            if lib != "PiP-MColl":
                assert all(m <= s for m, s in zip(mcoll, series)), lib
        assert result.best_speedup_vs_fastest_other() > 1.05

"""Shared plumbing for the figure benchmarks.

Each ``bench_figXX_*.py`` regenerates one evaluation figure of the paper:
it runs the figure's sweep once inside pytest-benchmark (so
``pytest benchmarks/ --benchmark-only`` times the full regeneration),
prints the absolute and normalised tables, writes them under
``results/``, and asserts the figure's headline *shape* (who wins where).

Sweep points execute through :mod:`repro.bench.runner`, so the usual env
knobs apply here too: ``PIPMCOLL_JOBS`` fans points out across a process
pool, ``PIPMCOLL_CACHE=0`` disables the ``.bench_cache/`` memoization, and
``PIPMCOLL_PROGRESS=1`` prints per-point progress to stderr.  Results are
bit-identical in every mode.  Note that with the cache warm, the benchmark
times the cache, not the simulator — pass ``PIPMCOLL_CACHE=0`` (or use
``--refresh`` via ``repro.bench.record``) when timing regenerations.

Scale is controlled by ``PIPMCOLL_SCALE`` (default ``medium``; see
``repro.bench.config``).
"""

from __future__ import annotations

from pathlib import Path

from repro.bench.config import current_scale
from repro.bench.report import FigureResult, format_normalized, format_table
from repro.bench.runner import default_runner

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


def run_figure(benchmark, figure_fn, cap: float | None = None) -> FigureResult:
    """Run one figure sweep under pytest-benchmark and persist its tables."""
    runner = default_runner()
    result = benchmark.pedantic(
        lambda: figure_fn(runner=runner), rounds=1, iterations=1
    )
    text = format_table(result)
    if "PiP-MColl" in result.series:
        text += "\n" + format_normalized(result, cap=cap)
    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / f"bench_{result.fig_id}_{current_scale().name}.txt"
    out.write_text(text + "\n")
    print("\n" + text)
    return result


def at_least_medium_scale() -> bool:
    """Some orderings only emerge beyond toy scale (see EXPERIMENTS.md)."""
    return current_scale().name != "small"

"""Fig. 6 — MPI_Scatter vs node count (16 B and 1 kB), PiP-MColl vs the
PiP-MPICH baseline."""

from repro.bench.figures import fig06_scatter_scaling

from _common import run_figure


def test_fig06_scatter_scaling(benchmark):
    result = run_figure(benchmark, fig06_scatter_scaling)
    small_m = result.series["PiP-MColl @16B"]
    small_b = result.series["PiP-MPICH @16B"]
    med_m = result.series["PiP-MColl @1kB"]
    med_b = result.series["PiP-MPICH @1kB"]
    # PiP-MColl outperforms the baseline at every node count, both sizes
    assert all(m < b for m, b in zip(small_m, small_b))
    assert all(m < b for m, b in zip(med_m, med_b))
    # runtime grows with node count but stays sub-linear in nodes for the
    # small size (log_{P+1} rounds — §III-A1's scalability claim)
    n_ratio = result.xs[-1] / result.xs[0]
    assert small_m[-1] / small_m[0] < n_ratio

"""Fig. 8 — MPI_Allreduce vs node count (16 and 1 k doubles), PiP-MColl vs
the PiP-MPICH baseline.

The paper's own observation (§IV-B3) holds here: the multi-object win is
clear for small counts, while for the 1 k-double (8 kB) case the per-node
multi-object synchronisation overhead eats most of the advantage as nodes
increase.
"""

from repro.bench.figures import fig08_allreduce_scaling

from _common import at_least_medium_scale, run_figure


def test_fig08_allreduce_scaling(benchmark):
    result = run_figure(benchmark, fig08_allreduce_scaling)
    small_m = result.series["PiP-MColl @16dbl"]
    small_b = result.series["PiP-MPICH @16dbl"]
    med_m = result.series["PiP-MColl @1kdbl"]
    med_b = result.series["PiP-MPICH @1kdbl"]
    if at_least_medium_scale():
        # small counts: multi-object wins at every node count
        assert all(m < b for m, b in zip(small_m, small_b))
    # medium counts: the advantage shrinks relative to small counts as
    # nodes increase (§IV-B3) — compare relative gaps at the largest run
    small_gain = small_b[-1] / small_m[-1]
    med_gain = med_b[-1] / med_m[-1]
    assert med_gain < small_gain

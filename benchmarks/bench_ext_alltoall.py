"""Extension benchmark (not a paper figure): multi-object MPI_Alltoall.

Compares the multi-object alltoall (node-aggregated lanes, zero staging on
the receive side) against the classical flat Bruck/pairwise selections of
the modelled production libraries, across the paper's message-size axis.
"""

from repro.bench.config import current_scale
from repro.bench.microbench import run_point
from repro.bench.report import FigureResult, format_normalized, format_table
from repro.util.units import fmt_size

from _common import RESULTS_DIR, at_least_medium_scale

SIZES = [16, 128, 1024, 8192]
LIBS = ["PiP-MColl", "PiP-MPICH", "IntelMPI", "OpenMPI"]


def run_alltoall_sweep() -> FigureResult:
    scale = current_scale()
    series = {lib: [] for lib in LIBS}
    for nbytes in SIZES:
        for lib in LIBS:
            r = run_point(lib, "alltoall", scale.nodes, scale.ppn, nbytes)
            series[lib].append(r.time)
    return FigureResult(
        "ext-alltoall", "MPI_Alltoall (extension, per-block sizes)",
        "blocksize", [fmt_size(s) for s in SIZES], series,
        meta={"scale": scale.name, "shape": f"{scale.nodes}x{scale.ppn}"},
    )


def test_ext_alltoall(benchmark):
    result = benchmark.pedantic(run_alltoall_sweep, rounds=1, iterations=1)
    text = format_table(result) + "\n" + format_normalized(result)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"bench_ext_alltoall_{current_scale().name}.txt").write_text(
        text + "\n"
    )
    print("\n" + text)
    if at_least_medium_scale():
        # node aggregation pays off beyond tiny blocks; at the largest
        # blocks everyone is bandwidth-bound (alltoall volume is pairwise-
        # optimal for all of them) and times converge — allow a 2% tie
        mcoll = result.series["PiP-MColl"]
        for i, x in enumerate(result.xs):
            if i == 0:
                continue  # tiny blocks: Bruck's log rounds are hard to beat
            for lib in LIBS[1:]:
                assert mcoll[i] < result.series[lib][i] * 1.02, (lib, x)

"""Fig. 10 — MPI_Allgather, small message sizes (16-512 B), five libraries.

The paper's strongest result: up to 4.6x over the fastest competing
library, with the baseline PiP-MPICH sometimes the *worst* performer due
to its per-message size-synchronisation overhead.
"""

from repro.bench.figures import fig10_allgather_small

from _common import at_least_medium_scale, run_figure


def test_fig10_allgather_small(benchmark):
    result = run_figure(benchmark, fig10_allgather_small, cap=6.0)
    mcoll = result.series["PiP-MColl"]
    for lib, series in result.series.items():
        if lib != "PiP-MColl":
            assert all(m <= s for m, s in zip(mcoll, series)), lib
    if at_least_medium_scale():
        assert result.best_speedup_vs_fastest_other() > 1.3
